#include "debruijn/debruijn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace mot {
namespace {

TEST(DeBruijnGraph, SuccessorsShiftBitsIn) {
  const DeBruijnGraph g(3);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.successor(0b101, 0), 0b010u);
  EXPECT_EQ(g.successor(0b101, 1), 0b011u);
  EXPECT_EQ(g.successor(0b111, 1), 0b111u);  // self loop at all-ones
}

TEST(DeBruijnGraph, ShortestPathEndpoints) {
  const DeBruijnGraph g(4);
  for (std::uint32_t from = 0; from < g.num_vertices(); from += 3) {
    for (std::uint32_t to = 0; to < g.num_vertices(); to += 5) {
      const auto path = g.shortest_path(from, to);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), from);
      EXPECT_EQ(path.back(), to);
      // Each hop is a legal de Bruijn edge.
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_TRUE(path[i] == g.successor(path[i - 1], 0) ||
                    path[i] == g.successor(path[i - 1], 1));
      }
    }
  }
}

TEST(DeBruijnGraph, DiameterIsDimension) {
  const DeBruijnGraph g(5);
  int max_dist = 0;
  for (std::uint32_t from = 0; from < g.num_vertices(); ++from) {
    for (std::uint32_t to = 0; to < g.num_vertices(); ++to) {
      max_dist = std::max(max_dist, g.distance(from, to));
    }
  }
  EXPECT_EQ(max_dist, 5);
}

TEST(DeBruijnGraph, SelfPathIsTrivial) {
  const DeBruijnGraph g(4);
  EXPECT_EQ(g.distance(9, 9), 0);
}

TEST(DeBruijnGraph, OverlapShortensPath) {
  const DeBruijnGraph g(4);
  // 0b0111 -> 0b1110: suffix 111 == prefix 111, one shift.
  EXPECT_EQ(g.distance(0b0111, 0b1110), 1);
}

TEST(DeBruijnGraph, DimensionZero) {
  const DeBruijnGraph g(0);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.distance(0, 0), 0);
}

TEST(UniversalHash, DeterministicPerSalt) {
  const UniversalHash a(5);
  const UniversalHash b(5);
  const UniversalHash c(6);
  EXPECT_EQ(a(123), b(123));
  EXPECT_NE(a(123), c(123));
}

TEST(UniversalHash, SpreadsKeys) {
  const UniversalHash hash(7);
  std::set<std::uint64_t> buckets;
  for (std::uint64_t key = 0; key < 100; ++key) {
    buckets.insert(hash(key) % 16);
  }
  EXPECT_GE(buckets.size(), 12u);  // nearly all buckets hit
}

TEST(ClusterEmbedding, HostsAndLabels) {
  ClusterEmbedding embedding({10, 20, 30}, 1);
  EXPECT_EQ(embedding.size(), 3u);
  EXPECT_EQ(embedding.dimension(), 2);
  EXPECT_EQ(embedding.host(0), 10u);
  EXPECT_EQ(embedding.host(1), 20u);
  EXPECT_EQ(embedding.host(2), 30u);
  // Label 3 (>= |X|) is emulated by the member at 3 & ~msb = 1.
  EXPECT_EQ(embedding.host(3), 20u);
  EXPECT_EQ(embedding.label_of(30), 2);
  EXPECT_EQ(embedding.label_of(99), -1);
}

TEST(ClusterEmbedding, RouteEndpointsAndMembership) {
  std::vector<NodeId> members(13);
  std::iota(members.begin(), members.end(), 100);
  const ClusterEmbedding embedding(members, 3);
  for (std::uint32_t from = 0; from < 13; from += 3) {
    for (std::uint32_t to = 0; to < 13; to += 4) {
      const auto route = embedding.route(from, to);
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(route.front(), members[from]);
      EXPECT_EQ(route.back(), members[to]);
      // Hops bounded by dimension + 1 vertices.
      EXPECT_LE(route.size(),
                static_cast<std::size_t>(embedding.dimension()) + 1);
      for (const NodeId hop : route) {
        EXPECT_GE(embedding.label_of(hop), 0);  // all hops are members
      }
    }
  }
}

TEST(ClusterEmbedding, KeysHashWithinCluster) {
  ClusterEmbedding embedding({1, 2, 3, 4, 5}, 11);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const NodeId node = embedding.node_for_key(key);
    EXPECT_GE(node, 1u);
    EXPECT_LE(node, 5u);
    EXPECT_EQ(node, embedding.host(embedding.label_for_key(key)));
  }
}

TEST(ClusterEmbedding, HashSpreadsAcrossMembers) {
  std::vector<NodeId> members(8);
  std::iota(members.begin(), members.end(), 0);
  const ClusterEmbedding embedding(members, 13);
  std::vector<int> hits(8, 0);
  for (std::uint64_t key = 0; key < 800; ++key) {
    ++hits[embedding.node_for_key(key)];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 40);   // no starving member
    EXPECT_LT(h, 250);  // no hot member
  }
}

TEST(ClusterEmbedding, AddMemberGrowsDimensionAtPowersOfTwo) {
  ClusterEmbedding embedding({1, 2, 3}, 1);
  EXPECT_EQ(embedding.dimension(), 2);
  // 3 -> 4 members: label 3 still fits dimension 2, O(1) updates.
  EXPECT_EQ(embedding.add_member(4), 3u);
  EXPECT_EQ(embedding.dimension(), 2);  // ceil(log2 4) == 2
  // 4 -> 5 members: old size was a power of two, dimension must grow and
  // every member re-derives its labels.
  EXPECT_EQ(embedding.add_member(5), 5u);
  EXPECT_EQ(embedding.dimension(), 3);
  // Every label is hosted by a real member afterwards.
  for (std::uint32_t label = 0; label < 8; ++label) {
    EXPECT_GE(embedding.label_of(embedding.host(label)), 0);
  }
}

TEST(ClusterEmbedding, RemoveMemberRelabels) {
  ClusterEmbedding embedding({10, 20, 30, 40, 50}, 1);
  embedding.remove_member(20);
  EXPECT_EQ(embedding.size(), 4u);
  EXPECT_EQ(embedding.label_of(20), -1);
  // The last member (50) took 20's label.
  EXPECT_EQ(embedding.label_of(50), 1);
}

TEST(ClusterEmbedding, RemoveAtPowerOfTwoShrinksDimension) {
  ClusterEmbedding embedding({1, 2, 3, 4, 5}, 1);
  EXPECT_EQ(embedding.dimension(), 3);
  // 5 -> 4 members: 4 is a power of two, dimension shrinks, all updated.
  EXPECT_EQ(embedding.remove_member(3), 4u);
  EXPECT_EQ(embedding.dimension(), 2);
}

TEST(ClusterEmbedding, AmortizedConstantUpdates) {
  std::vector<NodeId> members(3);
  std::iota(members.begin(), members.end(), 0);
  ClusterEmbedding embedding(members, 1);
  std::size_t total_updates = 0;
  std::size_t events = 0;
  NodeId next = 3;
  for (int round = 0; round < 200; ++round) {
    total_updates += embedding.add_member(next++);
    ++events;
    if (round % 3 == 0) {
      total_updates += embedding.remove_member(
          embedding.members()[round % embedding.size()]);
      ++events;
    }
  }
  const double amortized =
      static_cast<double>(total_updates) / static_cast<double>(events);
  EXPECT_LE(amortized, 8.0);  // O(1) amortized (Section 7)
}

TEST(ClusterEmbedding, NeighborTablesAreConstantSize) {
  // The paper's Section 5 claim: "the neighborhood table at each node is
  // of constant size" — at most the two de Bruijn out-neighbors.
  for (const std::size_t size : {2u, 5u, 16u, 37u, 100u}) {
    std::vector<NodeId> members(size);
    std::iota(members.begin(), members.end(), 0);
    const ClusterEmbedding embedding(members, 3);
    for (std::uint32_t label = 0;
         label < (1u << embedding.dimension()); ++label) {
      const auto table = embedding.neighbor_table(label);
      EXPECT_LE(table.size(), 2u);
      for (const NodeId host : table) {
        EXPECT_GE(embedding.label_of(host), 0);  // neighbors are members
      }
    }
  }
}

TEST(ClusterEmbedding, NeighborTablesSufficeForRouting) {
  // Every hop of every shortest route is reachable through some node's
  // neighbor table (the routing state is genuinely local).
  std::vector<NodeId> members(23);
  std::iota(members.begin(), members.end(), 50);
  const ClusterEmbedding embedding(members, 5);
  for (std::uint32_t from = 0; from < 23; from += 4) {
    for (std::uint32_t to = 0; to < 23; to += 5) {
      const auto route = embedding.route(from, to);
      for (std::size_t i = 1; i < route.size(); ++i) {
        // The next physical host must be the previous hop itself (label
        // emulation collapse) or in some of its labels' tables.
        const NodeId prev = route[i - 1];
        bool reachable = false;
        for (std::uint32_t label = 0;
             label < (1u << embedding.dimension()) && !reachable;
             ++label) {
          if (embedding.host(label) != prev) continue;
          const auto table = embedding.neighbor_table(label);
          reachable = std::find(table.begin(), table.end(), route[i]) !=
                      table.end();
        }
        EXPECT_TRUE(reachable) << "hop " << prev << " -> " << route[i];
      }
    }
  }
}

// Reference route: map the label shortest path through host() and
// collapse consecutive duplicates — what route() did before the next-hop
// tables were precomputed.
std::vector<NodeId> reference_route(const ClusterEmbedding& embedding,
                                    std::uint32_t from, std::uint32_t to) {
  const DeBruijnGraph g(embedding.dimension());
  std::vector<NodeId> hops;
  for (const std::uint32_t label : g.shortest_path(from, to)) {
    const NodeId node = embedding.host(label);
    if (hops.empty() || hops.back() != node) hops.push_back(node);
  }
  return hops;
}

TEST(ClusterEmbedding, PrecomputedRoutesMatchReference) {
  for (const std::size_t size : {2u, 5u, 13u, 32u, 49u}) {
    std::vector<NodeId> members(size);
    std::iota(members.begin(), members.end(), 7);
    const ClusterEmbedding embedding(members, 17);
    for (std::uint32_t from = 0; from < size; ++from) {
      for (std::uint32_t to = 0; to < size; ++to) {
        EXPECT_EQ(embedding.route_hops(from, to),
                  reference_route(embedding, from, to))
            << "size=" << size << " " << from << "->" << to;
      }
    }
  }
}

TEST(ClusterEmbedding, NextHostTableMatchesSuccessorHosts) {
  std::vector<NodeId> members(21);
  std::iota(members.begin(), members.end(), 300);
  const ClusterEmbedding embedding(members, 9);
  const DeBruijnGraph g(embedding.dimension());
  for (std::uint32_t label = 0; label < g.num_vertices(); ++label) {
    for (const int bit : {0, 1}) {
      EXPECT_EQ(embedding.next_host(label, bit),
                embedding.host(g.successor(label, bit)));
    }
  }
}

TEST(ClusterEmbedding, TablesTrackMembershipChanges) {
  ClusterEmbedding embedding({1, 2, 3}, 1);
  // Grow across a power-of-two boundary (dimension 2 -> 3), then shrink
  // back; routes must stay consistent with the reference at every step.
  embedding.add_member(4);
  embedding.add_member(5);
  embedding.remove_member(2);
  for (std::uint32_t from = 0; from < embedding.size(); ++from) {
    for (std::uint32_t to = 0; to < embedding.size(); ++to) {
      EXPECT_EQ(embedding.route_hops(from, to),
                reference_route(embedding, from, to));
    }
  }
  const DeBruijnGraph g(embedding.dimension());
  for (std::uint32_t label = 0; label < g.num_vertices(); ++label) {
    for (const int bit : {0, 1}) {
      EXPECT_EQ(embedding.next_host(label, bit),
                embedding.host(g.successor(label, bit)));
    }
  }
}

TEST(ClusterEmbedding, SingleMemberCluster) {
  ClusterEmbedding embedding({42}, 1);
  EXPECT_EQ(embedding.size(), 1u);
  EXPECT_EQ(embedding.dimension(), 0);
  EXPECT_EQ(embedding.node_for_key(99), 42u);
  const auto route = embedding.route(0, 0);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(route[0], 42u);
}

}  // namespace
}  // namespace mot
