#include "hier/mis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace mot {
namespace {

// Builds a MisInstance from a Graph using its direct edges.
MisInstance instance_from_graph(const Graph& graph) {
  MisInstance instance;
  instance.vertices.resize(graph.num_nodes());
  instance.neighbors.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    instance.vertices[v] = v;
    for (const Edge& e : graph.neighbors(v)) {
      instance.neighbors[v].push_back(e.to);
    }
  }
  return instance;
}

TEST(LubyMis, EmptyInstance) {
  MisInstance instance;
  Rng rng(1);
  const MisResult result = luby_mis(instance, rng);
  EXPECT_TRUE(result.members.empty());
}

TEST(LubyMis, SingletonJoins) {
  MisInstance instance;
  instance.vertices = {7};
  instance.neighbors.resize(1);
  Rng rng(1);
  const MisResult result = luby_mis(instance, rng);
  ASSERT_EQ(result.members.size(), 1u);
  EXPECT_EQ(result.members[0], 7u);
}

TEST(LubyMis, EdgelessGraphTakesAll) {
  MisInstance instance;
  instance.vertices = {1, 2, 3, 4};
  instance.neighbors.resize(4);
  Rng rng(1);
  const MisResult result = luby_mis(instance, rng);
  EXPECT_EQ(result.members.size(), 4u);
}

TEST(LubyMis, CompleteGraphTakesExactlyOne) {
  const MisInstance instance = instance_from_graph(make_complete(8));
  Rng rng(5);
  const MisResult result = luby_mis(instance, rng);
  EXPECT_EQ(result.members.size(), 1u);
  EXPECT_TRUE(is_maximal_independent_set(instance, result.members));
}

TEST(LubyMis, ValidOnVariousGraphs) {
  Rng graph_rng(17);
  const Graph graphs[] = {
      make_grid(8, 8), make_ring(21), make_path(30), make_star(16),
      make_connected_random(64, 4.0, 3.0, graph_rng)};
  for (const Graph& graph : graphs) {
    const MisInstance instance = instance_from_graph(graph);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      const MisResult result = luby_mis(instance, rng);
      EXPECT_TRUE(is_maximal_independent_set(instance, result.members))
          << graph.summary() << " seed " << seed;
    }
  }
}

TEST(LubyMis, DeterministicForSeed) {
  const MisInstance instance = instance_from_graph(make_grid(10, 10));
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(luby_mis(instance, a).members, luby_mis(instance, b).members);
}

TEST(LubyMis, RoundsAreLogarithmic) {
  const MisInstance instance = instance_from_graph(make_grid(16, 16));
  Rng rng(3);
  const MisResult result = luby_mis(instance, rng);
  // Luby needs O(log n) rounds in expectation; allow generous slack.
  EXPECT_LE(result.rounds, 32u);
  EXPECT_GE(result.rounds, 1u);
}

TEST(IsMaximalIndependentSet, DetectsViolations) {
  const MisInstance instance = instance_from_graph(make_path(4));
  // 0-1-2-3: {0, 1} not independent; {0} not maximal; {0, 2} misses 3?
  // path 0-1-2-3: {0,2} leaves 3 uncovered? 3's neighbor is 2 -> covered.
  EXPECT_FALSE(is_maximal_independent_set(instance, {0, 1}));
  EXPECT_FALSE(is_maximal_independent_set(instance, {0}));
  EXPECT_TRUE(is_maximal_independent_set(instance, {0, 2}));
  EXPECT_TRUE(is_maximal_independent_set(instance, {0, 3}));
  EXPECT_TRUE(is_maximal_independent_set(instance, {1, 3}));
}

}  // namespace
}  // namespace mot
