#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace mot {
namespace {

TEST(TraceIo, RoundTripsGeneratedTrace) {
  const Graph g = make_grid(5, 5);
  TraceParams params;
  params.num_objects = 4;
  params.moves_per_object = 25;
  Rng rng(7);
  const MovementTrace original = generate_trace(g, params, rng);

  const std::string text = trace_to_string(original);
  std::string error;
  const auto parsed = trace_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->initial_proxy, original.initial_proxy);
  ASSERT_EQ(parsed->moves.size(), original.moves.size());
  for (std::size_t i = 0; i < original.moves.size(); ++i) {
    EXPECT_EQ(parsed->moves[i].object, original.moves[i].object);
    EXPECT_EQ(parsed->moves[i].from, original.moves[i].from);
    EXPECT_EQ(parsed->moves[i].to, original.moves[i].to);
  }
}

TEST(TraceIo, AcceptsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "mot-trace v1\n"
      "\n"
      "objects 2\n"
      "init 0 5   # object zero\n"
      "init 1 7\n"
      "move 0 5 6\n";
  const auto parsed = trace_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_objects(), 2u);
  EXPECT_EQ(parsed->initial_proxy[0], 5u);
  ASSERT_EQ(parsed->moves.size(), 1u);
  EXPECT_EQ(parsed->moves[0].to, 6u);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::string error;
  EXPECT_FALSE(trace_from_string("objects 1\ninit 0 0\n", &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TraceIo, RejectsUnknownDirective) {
  std::string error;
  EXPECT_FALSE(trace_from_string(
      "mot-trace v1\nobjects 1\ninit 0 0\nteleport 0 1 2\n", &error));
  EXPECT_NE(error.find("teleport"), std::string::npos);
}

TEST(TraceIo, RejectsObjectOutOfRange) {
  std::string error;
  EXPECT_FALSE(trace_from_string(
      "mot-trace v1\nobjects 1\ninit 3 0\n", &error));
}

TEST(TraceIo, RejectsMissingInit) {
  std::string error;
  EXPECT_FALSE(
      trace_from_string("mot-trace v1\nobjects 2\ninit 0 0\n", &error));
  EXPECT_NE(error.find("no init"), std::string::npos);
}

TEST(TraceIo, RejectsGarbageNumbers) {
  std::string error;
  EXPECT_FALSE(trace_from_string(
      "mot-trace v1\nobjects 1\ninit 0 -3\n", &error));
}

TEST(TraceIo, QueriesRoundTrip) {
  const std::vector<QueryOp> original = {{3, 0}, {17, 2}, {0, 1}};
  std::ostringstream out;
  write_queries(out, original);
  std::istringstream in(out.str());
  const auto parsed = read_queries(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].from, 17u);
  EXPECT_EQ((*parsed)[1].object, 2u);
}

TEST(TraceIo, QueriesRejectMalformed) {
  std::istringstream in("mot-queries v1\nquery 1\n");
  std::string error;
  EXPECT_FALSE(read_queries(in, &error));
}

}  // namespace
}  // namespace mot
