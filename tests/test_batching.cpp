// Batched maintenance (use_batching): coalescing detection-list updates
// per edge per window must never change what the structure computes —
// identical placement, identical proxies, identical locate answers —
// while strictly reducing metered messages, and the traced charges must
// still reconcile against the cost meter.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "proto/distributed_mot.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mot {
namespace {

using proto::DistributedMot;

struct Fixture {
  explicit Fixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// Runs the same multi-object workload against one runtime: publish a
// fleet, then rounds of correlated short moves (shared tree-path
// prefixes) followed by a sweep of locates. Returns the query answers
// in issue order.
std::vector<NodeId> run_workload(const Fixture& fx, DistributedMot& mot,
                                 Simulator& sim, int objects, int rounds) {
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
    mot.publish(o, static_cast<NodeId>(o % fx.graph.num_nodes()));
  }
  sim.run();

  std::vector<NodeId> answers;
  Rng rng(41);
  std::vector<NodeId> at(objects);
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
    at[o] = static_cast<NodeId>(o % fx.graph.num_nodes());
  }
  for (int r = 0; r < rounds; ++r) {
    // Every object steps in the same window, so climbs overlap.
    for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
      const auto neighbors = fx.graph.neighbors(at[o]);
      at[o] = neighbors[rng.below(neighbors.size())].to;
      mot.move(o, at[o]);
    }
    sim.run();
    for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
      mot.query(static_cast<NodeId>((o * 7 + r) % fx.graph.num_nodes()), o,
                [&answers](const QueryResult& result) {
                  ASSERT_TRUE(result.found);
                  answers.push_back(result.proxy);
                });
      sim.run();
    }
  }
  mot.validate_quiescent();
  return answers;
}

TEST(Batching, LocateAnswersAndPlacementMatchUnbatched) {
  const Fixture fx;
  Simulator plain_sim;
  DistributedMot plain(*fx.provider, plain_sim, fx.chain_options);
  const std::vector<NodeId> plain_answers =
      run_workload(fx, plain, plain_sim, /*objects=*/12, /*rounds=*/6);

  Simulator batched_sim;
  DistributedMot batched(*fx.provider, batched_sim, fx.chain_options);
  batched.use_batching(true);
  const std::vector<NodeId> batched_answers =
      run_workload(fx, batched, batched_sim, /*objects=*/12, /*rounds=*/6);

  // Batching changes when messages travel, never what they do: the
  // structure (placement, proxies) and every locate answer is identical.
  EXPECT_EQ(batched_answers, plain_answers);
  EXPECT_EQ(batched.load_per_node(), plain.load_per_node());
  for (ObjectId o = 0; o < 12; ++o) {
    EXPECT_EQ(batched.proxy_of(o), plain.proxy_of(o));
  }
  EXPECT_GT(batched.stats().batch_flushes, 0u);
  EXPECT_EQ(plain.stats().batch_flushes, 0u);
}

TEST(Batching, CoalescesSharedPrefixClimbs) {
  const Fixture fx;
  Simulator plain_sim;
  DistributedMot plain(*fx.provider, plain_sim, fx.chain_options);
  Simulator batched_sim;
  DistributedMot batched(*fx.provider, batched_sim, fx.chain_options);
  batched.use_batching(true);

  // A fleet published at the same proxy: the climbs run the same upward
  // sequence, so per-edge coalescing collapses them hard.
  for (ObjectId o = 0; o < 32; ++o) {
    plain.publish(o, 20);
    batched.publish(o, 20);
  }
  plain_sim.run();
  batched_sim.run();
  // All step to the same neighbor in one window.
  for (ObjectId o = 0; o < 32; ++o) {
    plain.move(o, 21);
    batched.move(o, 21);
  }
  plain_sim.run();
  batched_sim.run();
  plain.validate_quiescent();
  batched.validate_quiescent();

  EXPECT_GT(batched.stats().messages_coalesced, 0u);
  EXPECT_LT(batched.stats().messages_sent, plain.stats().messages_sent);
  EXPECT_EQ(batched.stats().messages_sent +
                batched.stats().messages_coalesced,
            plain.stats().messages_sent);
  // Fewer metered messages means strictly less metered distance.
  EXPECT_LT(batched.meter().total_distance(),
            plain.meter().total_distance());
  EXPECT_EQ(batched.load_per_node(), plain.load_per_node());
}

TEST(Batching, TraceChargesReconcileWithMeter) {
  const Fixture fx;
  obs::RingBufferSink sink(1 << 20);
  obs::TraceSink* previous = obs::install_trace_sink(&sink);
  Simulator sim;
  DistributedMot mot(*fx.provider, sim, fx.chain_options);
  mot.use_batching(true);
  run_workload(fx, mot, sim, /*objects=*/8, /*rounds=*/5);
  obs::install_trace_sink(previous);

  ASSERT_EQ(sink.dropped(), 0u);
  ASSERT_GT(mot.stats().messages_coalesced, 0u);
  double charged = 0.0;
  for (const obs::TraceEvent& event : sink.events()) {
    charged += event.charged;
  }
  const double metered = mot.meter().total_distance();
  ASSERT_GT(metered, 0.0);
  EXPECT_NEAR(charged, metered, 1e-6 * metered);
}

TEST(Batching, MoveCallbacksStillReportCosts) {
  const Fixture fx;
  Simulator sim;
  DistributedMot mot(*fx.provider, sim, fx.chain_options);
  mot.use_batching(true);
  mot.publish(0, 0);
  sim.run();
  MoveResult result;
  mot.move(0, 1, [&](const MoveResult& r) { result = r; });
  sim.run();
  mot.validate_quiescent();
  EXPECT_GT(result.cost, 0.0);
  // The move's attributed cost is part of the metered total.
  EXPECT_LE(result.cost, mot.meter().total_distance() + 1e-9);
}

TEST(Batching, FigureTablesBitIdenticalAcrossWorkerCounts) {
  // The PR 3 determinism contract extended to the batched fast path:
  // independent batched shards driven through the par pool must render
  // the same figure table no matter how many workers execute them.
  const Fixture fx;
  const auto render_shards = [&fx] {
    const auto outcomes =
        par::parallel_map(4, [&fx](std::size_t shard) {
          Simulator sim;
          DistributedMot mot(*fx.provider, sim, fx.chain_options);
          mot.use_batching(true);
          std::vector<NodeId> answers =
              run_workload(fx, mot, sim, /*objects=*/6, /*rounds=*/4);
          std::uint64_t digest = 1469598103934665603ULL;
          for (const NodeId answer : answers) {
            digest = (digest ^ static_cast<std::uint64_t>(answer)) *
                     1099511628211ULL;
          }
          return std::tuple{digest, mot.meter().total_distance(),
                            mot.stats().messages_sent,
                            mot.stats().messages_coalesced, shard};
        });
    Table table({"shard", "digest", "meter", "sent", "coalesced"});
    for (const auto& [digest, meter, sent, coalesced, shard] : outcomes) {
      table.begin_row()
          .cell(static_cast<std::uint64_t>(shard))
          .cell(digest)
          .cell(meter, 6)
          .cell(sent)
          .cell(coalesced);
    }
    return table.to_string();
  };

  const std::size_t saved = par::default_workers();
  par::set_default_workers(1);
  const std::string serial = render_shards();
  par::set_default_workers(4);
  const std::string parallel = render_shards();
  par::set_default_workers(saved);
  EXPECT_EQ(serial, parallel);
}

TEST(BatchArena, BumpAllocatesAlignedAndResets) {
  Arena arena(64);
  const std::span<std::uint64_t> a = arena.make_span<std::uint64_t>(4);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) %
                alignof(std::uint64_t),
            0u);
  a[0] = 7;
  a[3] = 9;
  // Force growth past the initial block.
  const std::span<std::uint64_t> b = arena.make_span<std::uint64_t>(64);
  ASSERT_EQ(b.size(), 64u);
  EXPECT_GT(arena.blocks(), 1u);
  EXPECT_EQ(a[0], 7u);  // earlier block untouched by growth
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.blocks(), 1u);  // largest block retained
}

TEST(BatchArena, CopyRoundTrips) {
  Arena arena;
  const std::vector<int> source{3, 1, 4, 1, 5, 9, 2, 6};
  const std::span<int> copy = arena.copy<int>(source);
  EXPECT_TRUE(std::equal(source.begin(), source.end(), copy.begin(),
                         copy.end()));
}

TEST(BatchArena, SteadyStateStopsGrowing) {
  Arena arena(32);
  for (int round = 0; round < 10; ++round) {
    arena.make_span<std::uint32_t>(500);
    arena.make_span<std::uint8_t>(123);
    arena.reset();
  }
  // After the first generations of geometric growth, one block serves
  // every subsequent batch of the same shape.
  EXPECT_EQ(arena.blocks(), 1u);
}

}  // namespace
}  // namespace mot
