#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace mot {
namespace {

TEST(Dijkstra, GridDistancesAreManhattan) {
  const Graph g = make_grid(5, 5);
  const ShortestPathTree tree = dijkstra(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto row = v / 5;
    const auto col = v % 5;
    EXPECT_DOUBLE_EQ(tree.distance[v], static_cast<double>(row + col));
  }
}

TEST(Dijkstra, WeightedGraphPicksCheapPath) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(1, 3, 1.0);
  builder.add_edge(0, 2, 1.0);
  builder.add_edge(2, 3, 5.0);
  const Graph g = std::move(builder).build();
  const ShortestPathTree tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 2.0);
  const auto path = tree.path_to(3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 3u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  const Graph g = std::move(builder).build();
  const ShortestPathTree tree = dijkstra(g, 0);
  EXPECT_EQ(tree.distance[2], kInfiniteDistance);
  EXPECT_TRUE(tree.path_to(2).empty());
}

TEST(DijkstraBounded, RespectsRadius) {
  const Graph g = make_path(10);
  const ShortestPathTree tree = dijkstra_bounded(g, 0, 3.0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 3.0);
  EXPECT_EQ(tree.distance[4], kInfiniteDistance);
}

TEST(BfsUnit, MatchesDijkstraOnGrids) {
  const Graph g = make_grid(6, 7);
  const ShortestPathTree bfs = bfs_unit(g, 10);
  const ShortestPathTree dij = dijkstra(g, 10);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(bfs.distance[v], dij.distance[v]);
  }
}

TEST(HasUnitWeights, DetectsWeighted) {
  EXPECT_TRUE(has_unit_weights(make_grid(3, 3)));
  EXPECT_FALSE(has_unit_weights(make_grid8(3, 3)));
}

TEST(PathTo, SourceIsItself) {
  const Graph g = make_path(3);
  const ShortestPathTree tree = dijkstra(g, 1);
  const auto path = tree.path_to(1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(Diameter, KnownValues) {
  EXPECT_DOUBLE_EQ(exact_diameter(make_path(10)), 9.0);
  EXPECT_DOUBLE_EQ(exact_diameter(make_ring(10)), 5.0);
  EXPECT_DOUBLE_EQ(exact_diameter(make_grid(4, 4)), 6.0);
  EXPECT_DOUBLE_EQ(exact_diameter(make_complete(5)), 1.0);
}

TEST(Diameter, TwoSweepExactOnTreesAndGrids) {
  EXPECT_DOUBLE_EQ(approx_diameter(make_path(17)), 16.0);
  EXPECT_DOUBLE_EQ(approx_diameter(make_grid(5, 8)), 11.0);
  Rng rng(5);
  const Graph tree = make_random_tree(64, rng);
  EXPECT_DOUBLE_EQ(approx_diameter(tree), exact_diameter(tree));
}

TEST(Eccentricity, CenterOfPath) {
  const Graph g = make_path(9);
  EXPECT_DOUBLE_EQ(eccentricity(g, 4), 4.0);
  EXPECT_DOUBLE_EQ(eccentricity(g, 0), 8.0);
}

}  // namespace
}  // namespace mot
