#include "hier/doubling_hierarchy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "graph/shortest_path.hpp"

namespace mot {
namespace {

struct Built {
  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
};

Built build(Graph graph, std::uint64_t seed = 1) {
  Built built;
  built.graph = std::move(graph);
  built.oracle = make_distance_oracle(built.graph);
  DoublingHierarchy::Params params;
  params.seed = seed;
  built.hierarchy =
      DoublingHierarchy::build(built.graph, *built.oracle, params);
  return built;
}

TEST(DoublingHierarchy, SingleNodeGraph) {
  GraphBuilder builder(1);
  const Built b = build(std::move(builder).build());
  EXPECT_EQ(b.hierarchy->height(), 0);
  EXPECT_EQ(b.hierarchy->root(), 0u);
  const auto group = b.hierarchy->group(0, 0);
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0], 0u);
}

TEST(DoublingHierarchy, BottomLevelIsAllNodes) {
  const Built b = build(make_grid(6, 6));
  EXPECT_EQ(b.hierarchy->members(0).size(), 36u);
  for (NodeId v = 0; v < 36; ++v) {
    EXPECT_TRUE(b.hierarchy->is_member(0, v));
  }
}

TEST(DoublingHierarchy, LevelsShrinkToSingleRoot) {
  const Built b = build(make_grid(8, 8));
  const int h = b.hierarchy->height();
  EXPECT_GE(h, 2);
  for (int level = 1; level <= h; ++level) {
    EXPECT_LE(b.hierarchy->members(level).size(),
              b.hierarchy->members(level - 1).size());
  }
  EXPECT_EQ(b.hierarchy->members(h).size(), 1u);
}

TEST(DoublingHierarchy, HeightIsLogDiameter) {
  const Built b = build(make_grid(8, 8));
  // D = 14 => h <= ceil(log2 14) + 2 with slack for the MIS chain.
  EXPECT_LE(b.hierarchy->height(), 7);
}

TEST(DoublingHierarchy, MembersAreNested) {
  const Built b = build(make_grid(7, 7), 3);
  for (int level = 1; level <= b.hierarchy->height(); ++level) {
    for (const NodeId v : b.hierarchy->members(level)) {
      EXPECT_TRUE(b.hierarchy->is_member(level - 1, v))
          << "level " << level << " member " << v;
    }
  }
}

TEST(DoublingHierarchy, MembersAtLevelLAreFarApart) {
  const Built b = build(make_grid(10, 10), 7);
  for (int level = 1; level <= b.hierarchy->height(); ++level) {
    const auto members = b.hierarchy->members(level);
    const Weight min_separation = std::ldexp(1.0, level);  // 2^level
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_GE(b.oracle->distance(members[i], members[j]),
                  min_separation)
            << "level " << level;
      }
    }
  }
}

TEST(DoublingHierarchy, DefaultParentWithinRadius) {
  const Built b = build(make_grid(9, 9), 11);
  for (int level = 0; level < b.hierarchy->height(); ++level) {
    const Weight radius = std::ldexp(1.0, level + 1);  // 2^{l+1}
    for (const NodeId v : b.hierarchy->members(level)) {
      const NodeId parent = b.hierarchy->default_parent(level, v);
      EXPECT_TRUE(b.hierarchy->is_member(level + 1, parent));
      EXPECT_LE(b.oracle->distance(v, parent), radius);
    }
  }
}

TEST(DoublingHierarchy, SelfParentWhenStillMember) {
  const Built b = build(make_grid(9, 9), 11);
  for (int level = 0; level < b.hierarchy->height(); ++level) {
    for (const NodeId v : b.hierarchy->members(level + 1)) {
      // A node surviving to the next level is its own nearest parent.
      EXPECT_EQ(b.hierarchy->default_parent(level, v), v);
    }
  }
}

TEST(DoublingHierarchy, GroupsSortedAndContainPrimary) {
  const Built b = build(make_grid(8, 8), 5);
  for (NodeId u = 0; u < b.graph.num_nodes(); u += 5) {
    for (int level = 1; level <= b.hierarchy->height(); ++level) {
      const auto group = b.hierarchy->group(u, level);
      ASSERT_FALSE(group.empty());
      for (std::size_t i = 1; i < group.size(); ++i) {
        EXPECT_LT(group[i - 1], group[i]);  // strict ID order
      }
      const NodeId primary = b.hierarchy->primary(u, level);
      EXPECT_TRUE(std::binary_search(group.begin(), group.end(), primary));
    }
  }
}

TEST(DoublingHierarchy, GroupMembersWithinParentSetRadius) {
  const Built b = build(make_grid(8, 8), 5);
  for (NodeId u = 0; u < b.graph.num_nodes(); u += 7) {
    for (int level = 1; level <= b.hierarchy->height(); ++level) {
      const NodeId anchor = b.hierarchy->home(u, level - 1);
      const Weight radius = 4.0 * std::ldexp(1.0, level);
      for (const NodeId p : b.hierarchy->group(u, level)) {
        EXPECT_LE(b.oracle->distance(anchor, p), radius);
        EXPECT_TRUE(b.hierarchy->is_member(level, p));
      }
    }
  }
}

TEST(DoublingHierarchy, ParentSetSizeBounded) {
  // Observation 1: constant-size parent sets in constant-doubling graphs
  // (2^{3 rho}; for 2D grids rho ~ 2, so 64 is a very generous cap).
  const Built b = build(make_grid(12, 12), 9);
  for (NodeId u = 0; u < b.graph.num_nodes(); u += 11) {
    for (int level = 1; level <= b.hierarchy->height(); ++level) {
      EXPECT_LE(b.hierarchy->group(u, level).size(), 64u);
    }
  }
}

// Lemma 2.1: detection paths of u and v share a level-l stop for
// l = ceil(log2 dist(u, v)) + 1.
TEST(DoublingHierarchy, DetectionPathsMeetAtLemmaLevel) {
  const Built b = build(make_grid(10, 10), 13);
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const auto u = static_cast<NodeId>(rng.below(b.graph.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(b.graph.num_nodes()));
    if (u == v) continue;
    const Weight dist = b.oracle->distance(u, v);
    const int meet_level = std::min(
        b.hierarchy->height(),
        static_cast<int>(std::ceil(std::log2(dist))) + 1);
    bool met = false;
    for (int level = 1; level <= meet_level && !met; ++level) {
      const auto gu = b.hierarchy->group(u, level);
      const auto gv = b.hierarchy->group(v, level);
      for (const NodeId x : gu) {
        if (std::binary_search(gv.begin(), gv.end(), x)) {
          met = true;
          break;
        }
      }
    }
    EXPECT_TRUE(met) << "u=" << u << " v=" << v << " dist=" << dist;
  }
}

// Lemma 2.2 analogue: detection path length up to level j is geometric
// in 2^j (constant depends on the doubling constant; assert the trend).
TEST(DoublingHierarchy, DetectionPathLengthGeometric) {
  const Built b = build(make_grid(12, 12), 17);
  for (const NodeId u : {0u, 77u, 143u}) {
    Weight previous = 0.0;
    for (int level = 1; level <= b.hierarchy->height(); ++level) {
      const Weight length = b.hierarchy->detection_path_length(u, level);
      // Lemma 2.2's per-level fragment bound is ~2^{3 rho} * 2^{l+1};
      // with rho ~ 2 on grids that is 256 * 2^l.
      EXPECT_GE(length, previous);  // monotone in level
      EXPECT_LE(length, 256.0 * std::ldexp(1.0, level))
          << "level " << level;
      previous = length;
    }
  }
}

TEST(DoublingHierarchy, RootGroupIsRoot) {
  const Built b = build(make_grid(6, 6), 19);
  const int h = b.hierarchy->height();
  for (NodeId u = 0; u < b.graph.num_nodes(); u += 5) {
    const auto group = b.hierarchy->group(u, h);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], b.hierarchy->root());
  }
}

TEST(DoublingHierarchy, ClusterContainsCenterAndRespectsRadius) {
  const Built b = build(make_grid(8, 8), 21);
  for (int level = 1; level <= b.hierarchy->height(); ++level) {
    for (const NodeId center : b.hierarchy->members(level)) {
      const auto cluster = b.hierarchy->cluster(level, center);
      EXPECT_TRUE(
          std::binary_search(cluster.begin(), cluster.end(), center));
      const Weight radius = std::ldexp(1.0, level);
      for (const NodeId v : cluster) {
        EXPECT_LE(b.oracle->distance(center, v), radius);
      }
    }
  }
}

TEST(DoublingHierarchy, TopClusterCoversWholeGridEventually) {
  const Built b = build(make_grid(6, 6), 23);
  const int h = b.hierarchy->height();
  // The root's cluster at the top level has radius 2^h >= D.
  if (std::ldexp(1.0, h) >= exact_diameter(b.graph)) {
    EXPECT_EQ(b.hierarchy->cluster(h, b.hierarchy->root()).size(),
              b.graph.num_nodes());
  }
}

TEST(DoublingHierarchy, DeterministicForSeed) {
  const Built a = build(make_grid(7, 7), 31);
  const Built b = build(make_grid(7, 7), 31);
  EXPECT_EQ(a.hierarchy->height(), b.hierarchy->height());
  for (int level = 0; level <= a.hierarchy->height(); ++level) {
    const auto ma = a.hierarchy->members(level);
    const auto mb = b.hierarchy->members(level);
    EXPECT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin(), mb.end()));
  }
}

TEST(DoublingHierarchy, WorksOnRingAndGeometric) {
  const Built ring = build(make_ring(32), 37);
  EXPECT_EQ(ring.hierarchy->members(ring.hierarchy->height()).size(), 1u);

  Rng rng(41);
  const Built geo =
      build(make_random_geometric(50, 10.0, 2.6, rng), 37);
  EXPECT_EQ(geo.hierarchy->members(geo.hierarchy->height()).size(), 1u);
}

TEST(DoublingHierarchy, DetectionPathCoversAllLevels) {
  const Built b = build(make_grid(8, 8), 43);
  const auto path = b.hierarchy->detection_path(5);
  std::set<int> levels;
  for (const auto& stop : path) levels.insert(stop.level);
  EXPECT_EQ(static_cast<int>(levels.size()), b.hierarchy->height());
  EXPECT_EQ(path.back().node, b.hierarchy->root());
}

}  // namespace
}  // namespace mot
