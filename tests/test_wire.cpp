// The wire codec's contracts: golden little-endian bytes, round-trip
// fuzz with re-encode byte equality (encoding is a pure function of the
// field values), unknown-field skip (a v(N) decoder steps over v(N+1)
// fields), and hardening — truncated or corrupted input always yields a
// typed DecodeError, never UB.
#include "wire/message_codec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frames.hpp"

namespace mot {
namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::DecodeError;
using wire::FrameKind;
using wire::MessageFrame;
using wire::WireType;

using Bytes = std::vector<std::uint8_t>;

// The codec's layout assumptions, checked at compile time: tags use the
// protobuf bit layout, doubles are IEEE-754 binary64, node ids are 32
// bits wide.
static_assert(sizeof(double) == 8);
static_assert(sizeof(NodeId) == 4);
static_assert(static_cast<int>(WireType::kVarint) == 0);
static_assert(static_cast<int>(WireType::kFixed64) == 1);
static_assert(static_cast<int>(WireType::kBytes) == 2);
static_assert(static_cast<int>(WireType::kFixed32) == 5);
static_assert(wire::kWireVersionMin <= wire::kWireVersion);
static_assert(wire::kWireVersionFuture > wire::kWireVersion);

// --- Primitive codecs: golden bytes -------------------------------------

TEST(WireCodec, Fixed32IsLittleEndian) {
  ByteWriter w;
  w.fixed32(0x01020304u);
  EXPECT_EQ(w.take(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(WireCodec, Fixed64IsLittleEndian) {
  ByteWriter w;
  w.fixed64(0x0102030405060708ULL);
  EXPECT_EQ(w.take(),
            (Bytes{0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01}));
}

TEST(WireCodec, DoubleIsLittleEndianIeee754) {
  ByteWriter w;
  w.f64(1.0);  // 0x3ff0000000000000
  EXPECT_EQ(w.take(), (Bytes{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}));
}

TEST(WireCodec, VarintGoldenBytes) {
  const struct {
    std::uint64_t value;
    Bytes encoded;
  } cases[] = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7f}},
      {128, {0x80, 0x01}},
      {300, {0xac, 0x02}},
      {~std::uint64_t{0},
       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
  };
  for (const auto& c : cases) {
    ByteWriter w;
    w.varint(c.value);
    EXPECT_EQ(w.take(), c.encoded) << c.value;
    ByteReader r(c.encoded);
    EXPECT_EQ(r.varint(), c.value);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
  }
}

TEST(WireCodec, ZigzagMapsSmallMagnitudesToSmallBytes) {
  const struct {
    std::int64_t value;
    Bytes encoded;
  } cases[] = {
      {0, {0x00}}, {-1, {0x01}}, {1, {0x02}}, {-2, {0x03}}, {2, {0x04}},
  };
  for (const auto& c : cases) {
    ByteWriter w;
    w.svarint(c.value);
    EXPECT_EQ(w.take(), c.encoded) << c.value;
    ByteReader r(c.encoded);
    EXPECT_EQ(r.svarint(), c.value);
  }
}

TEST(WireCodec, PrimitiveRoundTripFuzz) {
  SeedTree seeds(0xc0dec);
  Rng rng = seeds.stream("primitives");
  for (int i = 0; i < 2000; ++i) {
    // Bias toward small values (the shift makes leading zeros common),
    // where varint length boundaries live.
    const std::uint64_t u = rng() >> (rng() % 64);
    const auto s = static_cast<std::int64_t>(rng() >> (rng() % 64)) *
                   (rng.chance(0.5) ? 1 : -1);
    const double d = rng.uniform(-1e12, 1e12);
    ByteWriter w;
    w.varint(u);
    w.svarint(s);
    w.fixed32(static_cast<std::uint32_t>(u));
    w.fixed64(u);
    w.f64(d);
    const Bytes buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.varint(), u);
    EXPECT_EQ(r.svarint(), s);
    EXPECT_EQ(r.fixed32(), static_cast<std::uint32_t>(u));
    EXPECT_EQ(r.fixed64(), u);
    EXPECT_EQ(r.f64(), d);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
  }
}

// --- Reader hardening ----------------------------------------------------

TEST(WireCodec, OverlongVarintIsRejected) {
  const Bytes ten_continuations(10, 0xff);
  ByteReader r(ten_continuations);
  r.varint();
  EXPECT_EQ(r.error(), DecodeError::kOverlongVarint);

  // 10 bytes, but the final byte carries more than the top bit of a
  // 64-bit value.
  const Bytes overflow{0xff, 0xff, 0xff, 0xff, 0xff,
                       0xff, 0xff, 0xff, 0xff, 0x02};
  ByteReader r2(overflow);
  r2.varint();
  EXPECT_EQ(r2.error(), DecodeError::kOverlongVarint);
}

TEST(WireCodec, TruncatedReadsLatchShortRead) {
  const Bytes three{0x01, 0x02, 0x03};
  ByteReader r(three);
  EXPECT_EQ(r.fixed32(), 0u);
  EXPECT_EQ(r.error(), DecodeError::kShortRead);
  // The error latches: further reads are safe no-ops that keep the
  // original error.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.error(), DecodeError::kShortRead);
}

TEST(WireCodec, LengthPrefixBeyondInputIsBadLength) {
  ByteWriter w;
  w.varint(100);  // claims 100 payload bytes
  w.u8(0xab);     // ...but only one follows
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_TRUE(r.length_delimited().empty());
  EXPECT_EQ(r.error(), DecodeError::kBadLength);
}

TEST(WireCodec, UnknownWireTypeInTagIsBadTag) {
  for (const std::uint8_t bad_type : {3, 4, 6, 7}) {
    ByteWriter w;
    w.varint((1u << 3) | bad_type);
    const Bytes buf = w.take();
    ByteReader r(buf);
    std::uint32_t id = 0;
    WireType type = WireType::kVarint;
    EXPECT_FALSE(r.next_field(&id, &type));
    EXPECT_EQ(r.error(), DecodeError::kBadTag) << int(bad_type);
  }
}

// --- Message frames: round-trip fuzz -------------------------------------

proto::Message random_message(Rng& rng, proto::MsgType type) {
  proto::Message m;
  m.type = type;
  // Mix defaults in: the default-omission rule is part of the byte
  // contract, so half-populated messages must round-trip too.
  if (rng.chance(0.9)) m.object = static_cast<ObjectId>(rng() % 10000);
  if (rng.chance(0.9)) {
    m.role = {static_cast<int>(rng.uniform_int(-2, 40)),
              static_cast<NodeId>(rng() % 100000)};
  }
  if (rng.chance(0.7)) m.walk_source = static_cast<NodeId>(rng() % 100000);
  if (rng.chance(0.7)) m.walk_index = static_cast<std::uint32_t>(rng() % 64);
  if (rng.chance(0.6)) {
    m.link = {static_cast<int>(rng.uniform_int(-2, 40)),
              static_cast<NodeId>(rng() % 100000)};
  }
  if (rng.chance(0.5)) m.new_proxy = static_cast<NodeId>(rng() % 100000);
  if (rng.chance(0.5)) m.requester = static_cast<NodeId>(rng() % 100000);
  if (rng.chance(0.5)) m.query_id = rng() % 1000000;
  if (rng.chance(0.3)) m.degraded = true;
  if (rng.chance(0.3)) m.staleness = rng.uniform(0.0, 1e6);
  if (rng.chance(0.5)) m.op_cost = rng.uniform(0.0, 1e6);
  if (rng.chance(0.5)) m.op_peak = static_cast<std::int32_t>(
      rng.uniform_int(-1, 40));
  if (rng.chance(0.5)) {
    // Trace context travels together: an id plus the span/cursor pair.
    m.trace_id = rng();
    m.span = rng() % 1000;
    m.span_seq = m.span + 1 + rng() % 16;
  }
  return m;
}

TEST(WireMessage, RoundTripFuzzEveryTypeWithReencodeByteEquality) {
  SeedTree seeds(0x3117e);
  for (std::uint8_t t = 0; t < proto::kNumMsgTypes; ++t) {
    Rng rng = seeds.stream("msg", t);
    for (int i = 0; i < 200; ++i) {
      MessageFrame frame;
      frame.message = random_message(rng, static_cast<proto::MsgType>(t));
      if (rng.chance(0.9)) frame.from = static_cast<NodeId>(rng() % 100000);

      const Bytes encoded = wire::encode_message_frame(frame);

      // Frame envelope: the length prefix covers version + kind + body.
      std::span<const std::uint8_t> payload;
      std::size_t consumed = 0;
      ASSERT_EQ(wire::split_frame(encoded, &payload, &consumed),
                DecodeError::kNone);
      EXPECT_EQ(consumed, encoded.size());

      MessageFrame decoded;
      ASSERT_EQ(wire::decode_message_frame(payload, &decoded),
                DecodeError::kNone);
      EXPECT_EQ(decoded, frame) << "type " << int(t) << " iter " << i;

      // Encoding is a pure function of field values: decode -> re-encode
      // reproduces the exact bytes.
      EXPECT_EQ(wire::encode_message_frame(decoded), encoded);
    }
  }
}

TEST(WireMessage, VersionOneOmitsWalkerContext) {
  SeedTree seeds(0x01d);
  Rng rng = seeds.stream("v1");
  MessageFrame frame;
  frame.message = random_message(rng, proto::MsgType::kInsert);
  frame.message.op_cost = 123.5;
  frame.message.op_peak = 7;
  frame.message.trace_id = 0xfeedULL;
  frame.message.span = 3;
  frame.message.span_seq = 4;

  const Bytes v1 = wire::encode_message_frame(frame, 1);
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::split_frame(v1, &payload, &consumed), DecodeError::kNone);
  MessageFrame decoded;
  ASSERT_EQ(wire::decode_message_frame(payload, &decoded),
            DecodeError::kNone);
  // Everything round-trips except the v2 fields, which v1 cannot carry.
  EXPECT_EQ(decoded.message.op_cost, 0.0);
  EXPECT_EQ(decoded.message.op_peak, 0);
  EXPECT_EQ(decoded.message.trace_id, 0u);
  EXPECT_EQ(decoded.message.span, 0u);
  EXPECT_EQ(decoded.message.span_seq, 0u);
  decoded.message.op_cost = frame.message.op_cost;
  decoded.message.op_peak = frame.message.op_peak;
  decoded.message.trace_id = frame.message.trace_id;
  decoded.message.span = frame.message.span;
  decoded.message.span_seq = frame.message.span_seq;
  EXPECT_EQ(decoded, frame);
}

TEST(WireMessage, UntracedMessagesEncodeIdenticallyToPreTracingBytes) {
  // Tracing is omitted-by-default: a message with zero trace context
  // must produce the same v2 bytes it did before the fields existed, so
  // untraced clusters stay bit-identical (golden frames unchanged).
  SeedTree seeds(0x0b5);
  Rng rng = seeds.stream("untraced");
  for (int i = 0; i < 100; ++i) {
    MessageFrame frame;
    frame.message = random_message(
        rng, static_cast<proto::MsgType>(rng() % proto::kNumMsgTypes));
    frame.from = static_cast<NodeId>(rng() % 100000);
    MessageFrame untraced = frame;
    untraced.message.trace_id = 0;
    untraced.message.span = 0;
    untraced.message.span_seq = 0;
    const Bytes bytes = wire::encode_message_frame(untraced);
    if (frame.message.trace_id != 0) {
      EXPECT_LT(bytes.size(),
                wire::encode_message_frame(frame).size());
    }
    // No tag in the 16..18 range survives zeroing: the decoded message
    // equals a message that never had the fields.
    std::span<const std::uint8_t> payload;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::split_frame(bytes, &payload, &consumed),
              DecodeError::kNone);
    MessageFrame decoded;
    ASSERT_EQ(wire::decode_message_frame(payload, &decoded),
              DecodeError::kNone);
    EXPECT_EQ(decoded, untraced);
  }
}

TEST(WireMessage, CurrentDecoderSkipsFutureFields) {
  // The "build from the future" shim appends three fields (one per wire
  // type class) under ids no shipped decoder knows; today's decoder must
  // step over them and still produce the identical message.
  SeedTree seeds(0xf07012e);
  Rng rng = seeds.stream("future");
  for (int i = 0; i < 100; ++i) {
    MessageFrame frame;
    frame.message = random_message(
        rng, static_cast<proto::MsgType>(rng() % proto::kNumMsgTypes));
    frame.from = static_cast<NodeId>(rng() % 100000);

    const Bytes future =
        wire::encode_message_frame(frame, wire::kWireVersionFuture);
    const Bytes current = wire::encode_message_frame(frame);
    EXPECT_GT(future.size(), current.size());  // the probes are real bytes

    std::span<const std::uint8_t> payload;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::split_frame(future, &payload, &consumed),
              DecodeError::kNone);
    MessageFrame decoded;
    ASSERT_EQ(wire::decode_message_frame(payload, &decoded),
              DecodeError::kNone);
    EXPECT_EQ(decoded, frame);
  }
}

TEST(WireMessage, OutOfDomainTypeIsBadValue) {
  ByteWriter body;
  body.field_varint(1, proto::kNumMsgTypes);  // field 1 = MsgType
  const Bytes frame = wire::finish_frame(FrameKind::kMessage,
                                         wire::kWireVersion,
                                         std::move(body));
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::split_frame(frame, &payload, &consumed),
            DecodeError::kNone);
  MessageFrame decoded;
  EXPECT_EQ(wire::decode_message_frame(payload, &decoded),
            DecodeError::kBadValue);
}

TEST(WireMessage, EnvelopeRejectsBadVersionAndKind) {
  {
    const Bytes frame =
        wire::finish_frame(FrameKind::kMessage, 0, ByteWriter{});
    std::span<const std::uint8_t> payload;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::split_frame(frame, &payload, &consumed),
              DecodeError::kNone);
    MessageFrame decoded;
    EXPECT_EQ(wire::decode_message_frame(payload, &decoded),
              DecodeError::kBadVersion);
  }
  {
    const Bytes payload{wire::kWireVersion, 99};  // unknown kind
    ByteReader r(payload);
    wire::FrameHeader header;
    EXPECT_EQ(wire::read_frame_header(r, &header), DecodeError::kBadKind);
  }
  {
    // A kControl payload fed to the kMessage decoder is a kind mismatch.
    const Bytes frame = wire::encode_control({});
    std::span<const std::uint8_t> payload;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::split_frame(frame, &payload, &consumed),
              DecodeError::kNone);
    MessageFrame decoded;
    EXPECT_EQ(wire::decode_message_frame(payload, &decoded),
              DecodeError::kBadKind);
  }
}

TEST(WireMessage, OversizedLengthPrefixIsBadLength) {
  ByteWriter w;
  w.fixed32(wire::kMaxFramePayload + 1);
  w.u8(wire::kWireVersion);
  w.u8(static_cast<std::uint8_t>(FrameKind::kMessage));
  const Bytes buf = w.take();
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::split_frame(buf, &payload, &consumed),
            DecodeError::kBadLength);
}

// --- Truncation / corruption hardening -----------------------------------

TEST(WireHardening, EveryTruncationYieldsTypedErrorNeverCrash) {
  SeedTree seeds(0x72c);
  Rng rng = seeds.stream("trunc");
  for (int i = 0; i < 50; ++i) {
    MessageFrame frame;
    frame.message = random_message(
        rng, static_cast<proto::MsgType>(rng() % proto::kNumMsgTypes));
    frame.from = static_cast<NodeId>(rng() % 100000);
    const Bytes encoded = wire::encode_message_frame(frame);

    // Truncate the raw frame at every length: split_frame must report
    // kShortRead (wait for more bytes) everywhere below the full size.
    for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
      const std::span<const std::uint8_t> view(encoded.data(), cut);
      std::span<const std::uint8_t> payload;
      std::size_t consumed = 0;
      EXPECT_EQ(wire::split_frame(view, &payload, &consumed),
                DecodeError::kShortRead);
    }

    // Truncate the *payload* at every length past the envelope: the
    // decoder must come back with a typed error, never UB (the asan/ubsan
    // CI stage runs this very loop under sanitizers).
    std::span<const std::uint8_t> payload;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::split_frame(encoded, &payload, &consumed),
              DecodeError::kNone);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      MessageFrame decoded;
      const DecodeError err =
          wire::decode_message_frame(payload.first(cut), &decoded);
      if (cut < 2) {
        EXPECT_EQ(err, DecodeError::kShortRead);
      }
      // Longer prefixes may happen to end on a field boundary (kNone) or
      // die inside a value; either way it returned, typed, without UB.
    }
  }
}

TEST(WireHardening, RandomCorruptionNeverCrashes) {
  SeedTree seeds(0xbad);
  Rng rng = seeds.stream("corrupt");
  for (int i = 0; i < 300; ++i) {
    MessageFrame frame;
    frame.message = random_message(
        rng, static_cast<proto::MsgType>(rng() % proto::kNumMsgTypes));
    Bytes encoded = wire::encode_message_frame(frame);
    std::span<const std::uint8_t> payload;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::split_frame(encoded, &payload, &consumed),
              DecodeError::kNone);

    // Flip 1..4 random bytes of the payload (past the length prefix so
    // the carve stays in place) and decode: any outcome is legal except
    // a crash or sanitizer report.
    Bytes mutated(payload.begin(), payload.end());
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    MessageFrame decoded;
    (void)wire::decode_message_frame(mutated, &decoded);
  }
}

TEST(WireHardening, PureGarbageDecodesToTypedErrors) {
  SeedTree seeds(0x6a7ba6e);
  Rng rng = seeds.stream("garbage");
  for (int i = 0; i < 500; ++i) {
    Bytes garbage(rng() % 64);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    MessageFrame decoded;
    (void)wire::decode_message_frame(garbage, &decoded);
    wire::HelloFrame hello;
    (void)wire::decode_hello(garbage, &hello);
    wire::ControlFrame control;
    (void)wire::decode_control(garbage, &control);
    wire::CompleteFrame complete;
    (void)wire::decode_complete(garbage, &complete);
    wire::LoadReportFrame report;
    (void)wire::decode_load_report(garbage, &report);
  }
}

// --- Control-plane frames -------------------------------------------------

// Strips the length prefix: encode_* emits a full frame, decode_* takes
// the carved payload (what FrameStream::recv hands the cluster runner).
Bytes body_of(const Bytes& framed) {
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::split_frame(framed, &payload, &consumed),
            DecodeError::kNone);
  EXPECT_EQ(consumed, framed.size());
  return Bytes(payload.begin(), payload.end());
}

TEST(WireFrames, ControlPlaneRoundTrips) {
  SeedTree seeds(0xc7a1);
  Rng rng = seeds.stream("frames");
  for (int i = 0; i < 200; ++i) {
    wire::HelloFrame hello;
    hello.shard = static_cast<std::uint32_t>(rng() % 64);
    hello.num_shards = hello.shard + 1 + static_cast<std::uint32_t>(rng() % 8);
    hello.listen_port = static_cast<std::uint32_t>(rng() % 65536);
    hello.wire_min = 1;
    hello.wire_max = static_cast<std::uint8_t>(2 + rng() % 3);
    hello.node_map_hash = rng();
    hello.num_nodes = rng() % 100000;
    wire::HelloFrame hello2;
    ASSERT_EQ(wire::decode_hello(body_of(wire::encode_hello(hello)), &hello2),
              DecodeError::kNone);
    EXPECT_EQ(hello2, hello);

    wire::HelloAckFrame ack;
    ack.version = static_cast<std::uint8_t>(1 + rng() % 4);
    for (std::uint64_t p = rng() % 6; p > 0; --p) {
      ack.peer_ports.push_back(static_cast<std::uint32_t>(rng() % 65536));
    }
    wire::HelloAckFrame ack2;
    ASSERT_EQ(wire::decode_hello_ack(body_of(wire::encode_hello_ack(ack)), &ack2),
              DecodeError::kNone);
    EXPECT_EQ(ack2, ack);

    wire::ControlFrame control;
    control.op = static_cast<wire::ClusterOp>(1 + rng() % 6);
    control.object = static_cast<ObjectId>(rng() % 10000);
    control.node = static_cast<NodeId>(rng() % 100000);
    control.query_id = rng() % 1000000;
    wire::ControlFrame control2;
    ASSERT_EQ(wire::decode_control(body_of(wire::encode_control(control)), &control2),
              DecodeError::kNone);
    EXPECT_EQ(control2, control);

    wire::CompleteFrame complete;
    complete.op = static_cast<wire::ClusterOp>(1 + rng() % 5);
    complete.object = static_cast<ObjectId>(rng() % 10000);
    complete.query_id = rng() % 1000000;
    complete.found = rng.chance(0.5);
    complete.proxy = static_cast<NodeId>(rng() % 100000);
    complete.cost = rng.uniform(0.0, 1e6);
    complete.level = static_cast<std::int32_t>(rng.uniform_int(-1, 40));
    complete.degraded = rng.chance(0.2);
    complete.staleness = rng.uniform(0.0, 100.0);
    wire::CompleteFrame complete2;
    ASSERT_EQ(
        wire::decode_complete(body_of(wire::encode_complete(complete)), &complete2),
        DecodeError::kNone);
    EXPECT_EQ(complete2, complete);

    wire::ProbeReplyFrame reply;
    reply.token = rng();
    reply.forwarded = rng() % 1000000;
    reply.injected = rng() % 1000000;
    wire::ProbeReplyFrame reply2;
    ASSERT_EQ(wire::decode_probe_reply(body_of(wire::encode_probe_reply(reply)),
                                       &reply2),
              DecodeError::kNone);
    EXPECT_EQ(reply2, reply);

    wire::LoadReportFrame report;
    for (std::uint64_t n = rng() % 20; n > 0; --n) {
      report.loads.push_back(rng() % 1000);
    }
    report.meter_total = rng.uniform(0.0, 1e9);
    wire::LoadReportFrame report2;
    ASSERT_EQ(wire::decode_load_report(body_of(wire::encode_load_report(report)),
                                       &report2),
              DecodeError::kNone);
    EXPECT_EQ(report2, report);

    wire::LoopbackFrame loop{.seq = rng()};
    wire::LoopbackFrame loop2;
    ASSERT_EQ(wire::decode_loopback(body_of(wire::encode_loopback(loop)), &loop2),
              DecodeError::kNone);
    EXPECT_EQ(loop2, loop);
  }
}

TEST(WireFrames, ControlOpOutOfRangeIsBadValue) {
  ByteWriter body;
  body.field_varint(1, 99);  // field 1 = ClusterOp
  const Bytes frame = wire::finish_frame(FrameKind::kControl,
                                         wire::kWireVersion,
                                         std::move(body));
  wire::ControlFrame control;
  EXPECT_EQ(wire::decode_control(body_of(frame), &control),
            DecodeError::kBadValue);
}

TEST(WireFrames, TelemetryReportRoundTripsEveryMetricKind) {
  SeedTree seeds(0x7e1e);
  Rng rng = seeds.stream("telemetry");
  for (int i = 0; i < 100; ++i) {
    wire::TelemetryReportFrame report;
    report.shard = static_cast<std::uint32_t>(rng() % 16);
    obs::MetricSnapshot counter;
    counter.name = "mot_cost_messages_total";
    counter.kind = obs::MetricKind::kCounter;
    counter.counter_value = rng() % 1000000;
    if (rng.chance(0.5)) counter.labels = {{"shard", "3"}, {"op", "move"}};
    report.metrics.push_back(counter);
    obs::MetricSnapshot gauge;
    gauge.name = "mot_cost_distance_total";
    gauge.kind = obs::MetricKind::kGauge;
    gauge.gauge_value = rng.uniform(-1e6, 1e6);
    report.metrics.push_back(gauge);
    obs::MetricSnapshot histogram;
    histogram.name = "mot_latency";
    histogram.kind = obs::MetricKind::kHistogram;
    for (std::uint64_t b = 1 + rng() % 5; b > 0; --b) {
      histogram.bounds.push_back(rng.uniform(0.0, 1e3));
    }
    for (std::size_t b = 0; b <= histogram.bounds.size(); ++b) {
      histogram.buckets.push_back(rng() % 100);
    }
    histogram.sum = rng.uniform(0.0, 1e6);
    histogram.count = rng() % 100000;
    report.metrics.push_back(histogram);
    // Defaults must be omittable too: an all-zero counter.
    obs::MetricSnapshot zero;
    zero.name = "mot_zero";
    report.metrics.push_back(zero);

    const Bytes encoded = wire::encode_telemetry_report(report);
    wire::TelemetryReportFrame decoded;
    ASSERT_EQ(wire::decode_telemetry_report(body_of(encoded), &decoded),
              DecodeError::kNone);
    EXPECT_EQ(decoded, report);
    EXPECT_EQ(wire::encode_telemetry_report(decoded), encoded);
  }
}

TEST(WireFrames, TelemetryRejectsBadKindAndBucketMismatch) {
  {
    // Metric kind beyond kHistogram is out of domain.
    ByteWriter metric;
    metric.field_varint(1, 9);  // field 1 = MetricKind
    ByteWriter body;
    body.field_bytes(2, metric.take());  // field 2 = repeated metric
    const Bytes frame = wire::finish_frame(FrameKind::kTelemetryReport,
                                           wire::kWireVersion,
                                           std::move(body));
    wire::TelemetryReportFrame report;
    EXPECT_EQ(wire::decode_telemetry_report(body_of(frame), &report),
              DecodeError::kBadValue);
  }
  {
    // A histogram must carry exactly bounds+1 buckets.
    wire::TelemetryReportFrame report;
    obs::MetricSnapshot histogram;
    histogram.name = "h";
    histogram.kind = obs::MetricKind::kHistogram;
    histogram.bounds = {1.0, 2.0};
    histogram.buckets = {1, 2};  // one short
    report.metrics.push_back(histogram);
    const Bytes frame = wire::encode_telemetry_report(report);
    wire::TelemetryReportFrame decoded;
    EXPECT_EQ(wire::decode_telemetry_report(body_of(frame), &decoded),
              DecodeError::kBadValue);
  }
}

TEST(WireFrames, ShutdownIsABareEnvelope) {
  const Bytes frame = wire::encode_shutdown();
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::split_frame(frame, &payload, &consumed),
            DecodeError::kNone);
  ByteReader r(payload);
  wire::FrameHeader header;
  ASSERT_EQ(wire::read_frame_header(r, &header), DecodeError::kNone);
  EXPECT_EQ(header.kind, FrameKind::kShutdown);
  EXPECT_TRUE(r.at_end());
}

TEST(WireFrames, NamesAreStable) {
  EXPECT_STREQ(wire::frame_kind_name(FrameKind::kMessage), "message");
  EXPECT_STREQ(wire::frame_kind_name(FrameKind::kLoopback), "loopback");
  EXPECT_STREQ(wire::frame_kind_name(FrameKind::kTelemetryReport),
               "telemetry-report");
  EXPECT_STREQ(wire::decode_error_name(DecodeError::kNone), "none");
  EXPECT_STREQ(wire::cluster_op_name(wire::ClusterOp::kQuery), "query");
  EXPECT_STREQ(wire::cluster_op_name(wire::ClusterOp::kReportTelemetry),
               "report-telemetry");
}

TEST(WireFrames, EveryFrameKindAndClusterOpHasAName) {
  // The name tables are switch-based and the wire library compiles with
  // -Wswitch-enum, so a new enumerator that misses a case fails the
  // build; this guards the complementary property that no enumerator
  // falls back to the catch-all.
  for (std::uint8_t k = 1; k <= static_cast<std::uint8_t>(
                                    FrameKind::kTelemetryReport);
       ++k) {
    EXPECT_STRNE(wire::frame_kind_name(static_cast<FrameKind>(k)),
                 "unknown")
        << "FrameKind " << int(k);
  }
  for (std::uint8_t op = 1; op <= static_cast<std::uint8_t>(
                                      wire::ClusterOp::kReportTelemetry);
       ++op) {
    EXPECT_STRNE(wire::cluster_op_name(static_cast<wire::ClusterOp>(op)),
                 "unknown")
        << "ClusterOp " << int(op);
  }
}

TEST(WireFrames, SplitFrameCarvesBackToBackFrames) {
  const Bytes a = wire::encode_probe({.token = 7});
  const Bytes b = wire::encode_shutdown();
  Bytes joined = a;
  joined.insert(joined.end(), b.begin(), b.end());

  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::split_frame(joined, &payload, &consumed),
            DecodeError::kNone);
  wire::ProbeFrame probe;
  ASSERT_EQ(wire::decode_probe(payload, &probe), DecodeError::kNone);
  EXPECT_EQ(probe.token, 7u);

  const std::span<const std::uint8_t> rest(joined.data() + consumed,
                                           joined.size() - consumed);
  ASSERT_EQ(wire::split_frame(rest, &payload, &consumed),
            DecodeError::kNone);
  ByteReader r(payload);
  wire::FrameHeader header;
  ASSERT_EQ(wire::read_frame_header(r, &header), DecodeError::kNone);
  EXPECT_EQ(header.kind, FrameKind::kShutdown);
}

}  // namespace
}  // namespace mot
