#include "net/router.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace mot {
namespace {

TEST(RouteCost, SumsEdgeWeights) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 2.0);
  builder.add_edge(1, 2, 3.0);
  const Graph g = std::move(builder).build();
  EXPECT_DOUBLE_EQ(route_cost(g, {0, 1, 2}), 5.0);
  EXPECT_DOUBLE_EQ(route_cost(g, {1}), 0.0);
  EXPECT_DOUBLE_EQ(route_cost(g, {}), 0.0);
}

TEST(ShortestPathRouter, ExactOnGrids) {
  const Graph g = make_grid(6, 6);
  const auto oracle = make_distance_oracle(g);
  const ShortestPathRouter router(g);
  for (NodeId from = 0; from < 36; from += 5) {
    for (NodeId to = 0; to < 36; to += 7) {
      const auto route = router.route(from, to);
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(route.front(), from);
      EXPECT_EQ(route.back(), to);
      EXPECT_DOUBLE_EQ(route_cost(g, route), oracle->distance(from, to));
    }
  }
}

TEST(ShortestPathRouter, SelfRouteIsTrivial) {
  const Graph g = make_grid(3, 3);
  const ShortestPathRouter router(g);
  const auto route = router.route(4, 4);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(route[0], 4u);
}

TEST(ShortestPathRouter, CachesPerDestination) {
  const Graph g = make_grid(4, 4);
  const ShortestPathRouter router(g);
  router.route(0, 15);
  router.route(3, 15);
  EXPECT_EQ(router.cached_destinations(), 1u);
  router.route(0, 7);
  EXPECT_EQ(router.cached_destinations(), 2u);
}

TEST(ShortestPathRouter, ExactOnWeightedGraphs) {
  Rng rng(5);
  const Graph g = make_connected_random(50, 4.0, 7.0, rng);
  const auto oracle = make_distance_oracle(g);
  const ShortestPathRouter router(g);
  Rng pick(9);
  for (int i = 0; i < 50; ++i) {
    const auto from = static_cast<NodeId>(pick.below(50));
    const auto to = static_cast<NodeId>(pick.below(50));
    const auto route = router.route(from, to);
    ASSERT_FALSE(route.empty());
    EXPECT_NEAR(route_cost(g, route), oracle->distance(from, to), 1e-9);
  }
}

TEST(GreedyGeographicRouter, PerfectOnGrids) {
  // On a full grid, greedy geographic forwarding is void-free and every
  // hop reduces Manhattan distance, so routes are shortest paths.
  const Graph g = make_grid(8, 8);
  const auto oracle = make_distance_oracle(g);
  const GreedyGeographicRouter router(g);
  Rng rng(3);
  const RouteStretch stretch = measure_stretch(g, *oracle, router, rng, 200);
  EXPECT_EQ(stretch.failed, 0u);
  EXPECT_DOUBLE_EQ(stretch.delivery_rate(), 1.0);
  EXPECT_NEAR(stretch.mean_stretch, 1.0, 1e-9);
}

TEST(GreedyGeographicRouter, FailsAtVoids) {
  // A ring embedded on a circle has massive voids: the straight-line
  // target direction usually disagrees with the cycle, so greedy drops
  // long-haul packets at local minima.
  const Graph ring = make_ring(32);
  const GreedyGeographicRouter router(ring);
  // Opposite side of the ring: greedy walks until no neighbor is closer.
  const auto route = router.route(0, 16);
  // Either fails or pays heavily; on the circle embedding it must fail
  // for the antipodal pair (both neighbors are equidistant-or-farther
  // partway around).
  if (!route.empty()) {
    const auto oracle = make_distance_oracle(ring);
    EXPECT_GE(route_cost(ring, route), oracle->distance(0, 16));
  }
}

TEST(GreedyGeographicRouter, HighDeliveryOnDenseGeometric) {
  Rng rng(11);
  const Graph g = make_random_geometric(80, 10.0, 2.8, rng, 64, 0.5);
  const auto oracle = make_distance_oracle(g);
  const GreedyGeographicRouter router(g);
  Rng sample(13);
  const RouteStretch stretch =
      measure_stretch(g, *oracle, router, sample, 300);
  EXPECT_GT(stretch.delivery_rate(), 0.9);  // dense fields rarely void
  EXPECT_GE(stretch.mean_stretch, 1.0);
  EXPECT_LT(stretch.mean_stretch, 2.0);
}

TEST(MeasureStretch, ShortestPathRouterIsStretchOne) {
  const Graph g = make_grid(7, 7);
  const auto oracle = make_distance_oracle(g);
  const ShortestPathRouter router(g);
  Rng rng(17);
  const RouteStretch stretch = measure_stretch(g, *oracle, router, rng, 150);
  EXPECT_EQ(stretch.failed, 0u);
  EXPECT_NEAR(stretch.mean_stretch, 1.0, 1e-9);
  EXPECT_NEAR(stretch.max_stretch, 1.0, 1e-9);
}

// The substantiation the tracking cost model rests on: a message between
// two overlay nodes, physically forwarded hop by hop by the routing
// layer, costs exactly the oracle distance the trackers charge.
TEST(RoutingSubstantiatesCostModel, OverlayHopEqualsPhysicalRoute) {
  const Graph g = make_grid(9, 9);
  const auto oracle = make_distance_oracle(g);
  const ShortestPathRouter router(g);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<NodeId>(rng.below(81));
    const auto b = static_cast<NodeId>(rng.below(81));
    EXPECT_DOUBLE_EQ(route_cost(g, router.route(a, b)),
                     oracle->distance(a, b));
  }
}

}  // namespace
}  // namespace mot
