#include "tracking/chain_tracker.hpp"

#include <gtest/gtest.h>

#include "baselines/tree_tracker.hpp"
#include "graph/generators.hpp"

namespace mot {
namespace {

// A hand-built path structure over a 1-D line of sensors: node u's
// sequence is (0,u), (1, u/2*2), (2, u/4*4), ..., root (0). Distances come
// from the path graph, so every cost is easy to compute by hand.
class LineProvider final : public PathProvider {
 public:
  explicit LineProvider(std::size_t n, int height)
      : graph_(make_path(n)), oracle_(graph_), height_(height) {
    for (NodeId u = 0; u < n; ++u) {
      std::vector<PathStop> seq;
      seq.push_back({{0, u}, 0});
      for (int level = 1; level <= height_; ++level) {
        const NodeId anchor =
            static_cast<NodeId>(u / (1u << level) * (1u << level));
        seq.push_back({{level, anchor}, 0});
      }
      sequences_.push_back(std::move(seq));
    }
  }

  std::span<const PathStop> upward_sequence(NodeId u) const override {
    return sequences_[u];
  }
  std::optional<OverlayNode> special_parent(NodeId u,
                                            std::size_t index) const override {
    if (!enable_sp_) return std::nullopt;
    const auto& seq = sequences_[u];
    const std::size_t sp = index + 1;
    if (sp >= seq.size()) return std::nullopt;
    return seq[sp].node;
  }
  DelegateAccess delegate(OverlayNode owner, ObjectId) const override {
    return {owner.node, 0.0};
  }
  OverlayNode root_stop() const override { return {height_, 0}; }
  const DistanceOracle& oracle() const override { return oracle_; }
  std::size_t num_nodes() const override { return graph_.num_nodes(); }

  void enable_special_parents(bool on) { enable_sp_ = on; }

 private:
  Graph graph_;
  CachedDistanceOracle oracle_;
  int height_;
  bool enable_sp_ = false;
  std::vector<std::vector<PathStop>> sequences_;
};

class ChainTrackerTest : public ::testing::Test {
 protected:
  ChainTrackerTest() : provider_(16, 4) {}
  LineProvider provider_;
};

TEST_F(ChainTrackerTest, PublishBuildsFullChain) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 5);
  EXPECT_TRUE(tracker.is_published(0));
  EXPECT_EQ(tracker.proxy_of(0), 5u);
  // Chain: (0,5), (1,4), (2,4), (3,0), (4,0) -> 5 entries.
  EXPECT_EQ(tracker.dl_entries(0), 5u);
  tracker.validate(0);
  // Publish cost: |5-5|=0 irrelevant; hops 5->4 (1) + 4->4 + 4->0 (4) +
  // 0->0 = 5.
  EXPECT_DOUBLE_EQ(tracker.meter().total_distance(), 5.0);
}

TEST_F(ChainTrackerTest, QueryOwnNodeIsFree) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 5);
  const QueryResult result = tracker.query(5, 0);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 5u);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_EQ(result.found_level, 0);
}

TEST_F(ChainTrackerTest, QueryClimbsAndDescends) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 5);
  // Query from 4: sequence (0,4),(1,4),(2,4)... (1,4) has the object
  // (the chain passes through anchor 4).
  const QueryResult result = tracker.query(4, 0);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 5u);
  EXPECT_EQ(result.found_level, 1);
  // Climb 4->4 (0) + descend 4->5 (1).
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
}

TEST_F(ChainTrackerTest, MoveSplicesAndDeletesOldFragment) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 5);
  const MoveResult result = tracker.move(0, 6);
  EXPECT_EQ(tracker.proxy_of(0), 6u);
  tracker.validate(0);
  // New sequence: (0,6),(1,6),(2,4): meets at (2,4) which held the object.
  EXPECT_EQ(result.peak_level, 2);
  // Chain length unchanged: root chain now (4,0),(3,0),(2,4),(1,6),(0,6).
  EXPECT_EQ(tracker.dl_entries(0), 5u);
  EXPECT_GT(result.cost, 0.0);
}

TEST_F(ChainTrackerTest, MoveToSameProxyIsFree) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 5);
  const MoveResult result = tracker.move(0, 5);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_EQ(tracker.dl_entries(0), 5u);
  tracker.validate(0);
}

TEST_F(ChainTrackerTest, ManyMovesKeepInvariant) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 0);
  Rng rng(3);
  NodeId at = 0;
  for (int i = 0; i < 200; ++i) {
    const auto to = static_cast<NodeId>(rng.below(16));
    if (to == at) continue;
    tracker.move(0, to);
    at = to;
    tracker.validate(0);
  }
  EXPECT_EQ(tracker.proxy_of(0), at);
}

TEST_F(ChainTrackerTest, MultipleObjectsAreIndependent) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 3);
  tracker.publish(1, 12);
  tracker.move(0, 4);
  tracker.move(1, 11);
  EXPECT_EQ(tracker.proxy_of(0), 4u);
  EXPECT_EQ(tracker.proxy_of(1), 11u);
  tracker.validate_all();
  EXPECT_EQ(tracker.query(0, 0).proxy, 4u);
  EXPECT_EQ(tracker.query(15, 1).proxy, 11u);
}

TEST_F(ChainTrackerTest, SpecialListsRegisterAndClear) {
  provider_.enable_special_parents(true);
  ChainOptions options;
  options.use_special_lists = true;
  ChainTracker tracker("t", provider_, options);
  tracker.publish(0, 5);
  EXPECT_GT(tracker.sdl_entries(0), 0u);
  tracker.validate(0);
  tracker.move(0, 9);
  tracker.validate(0);
  tracker.move(0, 2);
  tracker.validate(0);
  // Every DL entry with a special parent has exactly one SDL record;
  // validate() checks the counts match, so just confirm non-zero here.
  EXPECT_GT(tracker.sdl_entries(0), 0u);
}

TEST_F(ChainTrackerTest, QueryCostNeverBelowDistanceSanity) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 15);
  for (NodeId from = 0; from < 16; ++from) {
    const QueryResult result = tracker.query(from, 0);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.proxy, 15u);
  }
}

TEST_F(ChainTrackerTest, LoadCountsEntriesAtHosts) {
  ChainTracker tracker("t", provider_, {});
  tracker.publish(0, 5);
  const auto load = tracker.load_per_node();
  ASSERT_EQ(load.size(), 16u);
  std::size_t total = 0;
  for (const auto l : load) total += l;
  EXPECT_EQ(total, tracker.dl_entries(0));
  // Root host (node 0) carries the two top entries.
  EXPECT_GE(load[0], 2u);
  EXPECT_GE(load[5], 1u);  // the proxy sentinel
}

// Tree-specific behaviours exercised through a real spanning tree.
class TreeChainTest : public ::testing::Test {
 protected:
  TreeChainTest() : graph_(make_grid(4, 4)), oracle_(graph_) {}

  SpanningTree star_tree() {
    // All nodes directly under node 5 (a depth-1 tree).
    SpanningTree tree;
    tree.root = 5;
    tree.parent.assign(16, 5);
    tree.parent[5] = 5;
    recompute_depths(tree);
    return tree;
  }

  Graph graph_;
  CachedDistanceOracle oracle_;
};

TEST_F(TreeChainTest, MoveToAncestorTearsNoFragment) {
  // Path tree: 0 <- 1 <- 2 <- ... <- 15 rooted at 0.
  SpanningTree tree;
  tree.root = 0;
  tree.parent.resize(16);
  tree.parent[0] = 0;
  for (NodeId v = 1; v < 16; ++v) tree.parent[v] = v - 1;
  recompute_depths(tree);
  Graph path = make_path(16);
  CachedDistanceOracle oracle(path);
  TreePathProvider provider(oracle, std::move(tree));
  ChainTracker tracker("tree", provider, {});

  tracker.publish(0, 10);
  // Move to an ancestor: the new proxy is on the old chain.
  const MoveResult up = tracker.move(0, 7);
  EXPECT_EQ(tracker.proxy_of(0), 7u);
  tracker.validate(0);
  EXPECT_DOUBLE_EQ(up.cost, 3.0);  // delete walks 7->8->9->10

  // Move to a descendant: the old proxy is an ancestor of the new one.
  const MoveResult down = tracker.move(0, 9);
  EXPECT_EQ(tracker.proxy_of(0), 9u);
  tracker.validate(0);
  EXPECT_DOUBLE_EQ(down.cost, 2.0);  // insert climbs 9->8->7, meets at 7
}

TEST_F(TreeChainTest, StarTreeQueryGoesThroughHub) {
  TreePathProvider provider(oracle_, star_tree());
  ChainTracker tracker("tree", provider, {});
  tracker.publish(0, 0);
  const QueryResult result = tracker.query(15, 0);
  EXPECT_EQ(result.proxy, 0u);
  // 15 -> hub 5 (manhattan 4) + hub -> 0 (manhattan 2).
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
}

TEST_F(TreeChainTest, ShortcutDescentChargesDirectDistance) {
  ChainOptions plain;
  ChainOptions shortcut;
  shortcut.shortcut_descent = true;

  // Deep path tree on the grid: snake through the grid so tree paths are
  // much longer than direct distances.
  SpanningTree tree;
  tree.root = 0;
  tree.parent.resize(16);
  tree.parent[0] = 0;
  for (NodeId v = 1; v < 16; ++v) tree.parent[v] = v - 1;
  recompute_depths(tree);
  SpanningTree tree_copy = tree;

  TreePathProvider provider_a(oracle_, std::move(tree));
  TreePathProvider provider_b(oracle_, std::move(tree_copy));
  ChainTracker plain_tracker("plain", provider_a, plain);
  ChainTracker shortcut_tracker("sc", provider_b, shortcut);
  plain_tracker.publish(0, 15);
  shortcut_tracker.publish(0, 15);

  const QueryResult a = plain_tracker.query(14, 0);
  const QueryResult b = shortcut_tracker.query(14, 0);
  EXPECT_EQ(a.proxy, b.proxy);
  EXPECT_LE(b.cost, a.cost);  // shortcuts never cost more
}

TEST_F(TreeChainTest, PublishAtInternalNode) {
  TreePathProvider provider(oracle_, star_tree());
  ChainTracker tracker("tree", provider, {});
  tracker.publish(0, 5);  // the hub itself
  EXPECT_EQ(tracker.proxy_of(0), 5u);
  tracker.validate(0);
  EXPECT_EQ(tracker.query(3, 0).proxy, 5u);
}

}  // namespace
}  // namespace mot
