#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mot {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    storage_.emplace_back("prog");
    for (const char* a : args) storage_.emplace_back(a);
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(Flags, ParsesAllTypes) {
  std::string name = "default";
  std::int64_t count = 1;
  std::uint64_t size = 2;
  double ratio = 0.5;
  bool verbose = false;

  Flags flags("test");
  flags.register_flag("name", &name, "a string");
  flags.register_flag("count", &count, "an int");
  flags.register_flag("size", &size, "a uint");
  flags.register_flag("ratio", &ratio, "a double");
  flags.register_flag("verbose", &verbose, "a bool");

  Argv argv{"--name=abc", "--count", "-5", "--size=100", "--ratio=1.25",
            "--verbose"};
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(name, "abc");
  EXPECT_EQ(count, -5);
  EXPECT_EQ(size, 100u);
  EXPECT_DOUBLE_EQ(ratio, 1.25);
  EXPECT_TRUE(verbose);
}

TEST(Flags, NoPrefixDisablesBool) {
  bool verbose = true;
  Flags flags("test");
  flags.register_flag("verbose", &verbose, "a bool");
  Argv argv{"--no-verbose"};
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_FALSE(verbose);
}

TEST(Flags, UnknownFlagFails) {
  Flags flags("test");
  Argv argv{"--bogus=1"};
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, InvalidValueFails) {
  std::int64_t count = 0;
  Flags flags("test");
  flags.register_flag("count", &count, "an int");
  Argv argv{"--count=notanumber"};
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, NegativeForUnsignedFails) {
  std::uint64_t size = 0;
  Flags flags("test");
  flags.register_flag("size", &size, "a uint");
  Argv argv{"--size=-3"};
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, MissingValueFails) {
  std::int64_t count = 0;
  Flags flags("test");
  flags.register_flag("count", &count, "an int");
  Argv argv{"--count"};
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, PositionalArgumentFails) {
  Flags flags("test");
  Argv argv{"stray"};
  EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, DefaultsSurviveEmptyParse) {
  std::string name = "keep";
  Flags flags("test");
  flags.register_flag("name", &name, "a string");
  Argv argv{};
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(name, "keep");
}

TEST(Flags, UsageMentionsFlagsAndDefaults) {
  std::int64_t count = 7;
  Flags flags("my tool");
  flags.register_flag("count", &count, "how many");
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("7"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

TEST(Flags, BoolAcceptsExplicitValues) {
  bool flag = false;
  Flags flags("test");
  flags.register_flag("flag", &flag, "b");
  Argv argv{"--flag=true"};
  ASSERT_TRUE(flags.parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(flag);
  Flags flags2("test");
  flags2.register_flag("flag", &flag, "b");
  Argv argv2{"--flag=0"};
  ASSERT_TRUE(flags2.parse(argv2.argc(), argv2.argv()));
  EXPECT_FALSE(flag);
}

}  // namespace
}  // namespace mot
