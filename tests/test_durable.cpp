// The durable layer's contracts (DESIGN.md §14): CRC known answers,
// journal record round-trip with unknown-field skip, the journal file's
// failure taxonomy (torn tail silently dropped, complete-frame rot
// typed, garbage typed — never UB), snapshot round-trip + hardening,
// MutableState replay strictness, DoublingHierarchy state rehydration,
// and end-to-end restore parity for both tracking engines.
#include "durable/store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/mot.hpp"
#include "durable/journal.hpp"
#include "durable/snapshot.hpp"
#include "durable/version.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/event_sim.hpp"
#include "tracking/chain_tracker.hpp"
#include "util/rng.hpp"

namespace mot {
namespace {

using durable::DurableStore;
using durable::FsyncMode;
using durable::JournalError;
using durable::JournalReadResult;
using durable::JournalRecord;
using durable::JournalWriter;
using durable::MutableState;
using durable::RestoreError;
using durable::StateImage;

using Bytes = std::vector<std::uint8_t>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// One record of every op, fields chosen so no two share a value.
std::vector<JournalRecord> every_op() {
  return {
      JournalRecord::make_publish(7, 3),
      JournalRecord::make_insert({2, 5}, 8, {1, 6}, OverlayNode{3, 9}),
      JournalRecord::make_insert({2, 5}, 9, {1, 6}, std::nullopt),
      JournalRecord::make_delete({0, 4}, 10),
      JournalRecord::make_sdl_add({3, 2}, 11, {2, 7}),
      JournalRecord::make_sdl_remove({3, 2}, 11, {2, 7}),
      JournalRecord::make_splice({1, 1}, 12, {0, 8}),
      JournalRecord::make_sp_clear({1, 1}, 12),
      JournalRecord::make_proxy(13, 14),
      JournalRecord::make_physical(13, 15),
      JournalRecord::make_wipe_object(16),
      JournalRecord::make_wipe_role({4, 0}),
      JournalRecord::make_wipe_node(5),
  };
}

// --- CRC + record codec ------------------------------------------------

TEST(JournalCodec, Crc32KnownAnswer) {
  // The IEEE 802.3 check value for "123456789".
  const Bytes digits = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(durable::crc32(digits), 0xCBF43926u);
  EXPECT_EQ(durable::crc32(Bytes{}), 0u);
}

TEST(JournalCodec, EveryOpRoundTrips) {
  for (const JournalRecord& record : every_op()) {
    const Bytes payload = durable::encode_record(record);
    JournalRecord back;
    ASSERT_TRUE(durable::decode_record(payload, &back))
        << durable::journal_op_name(record.op);
    EXPECT_EQ(back, record) << durable::journal_op_name(record.op);
    // Encoding is a pure function of the fields: re-encode byte equality.
    EXPECT_EQ(durable::encode_record(back), payload);
  }
}

TEST(JournalCodec, DecoderSkipsUnknownFields) {
  // A future writer appends a field this decoder has never heard of
  // (tag 15, varint). Rolling upgrades require the old decoder to step
  // over it and still see every field it does know.
  for (const JournalRecord& record : every_op()) {
    Bytes payload = durable::encode_record(record);
    payload.push_back(0x78);  // tag 15, wire type varint
    payload.push_back(0x2a);
    JournalRecord back;
    ASSERT_TRUE(durable::decode_record(payload, &back));
    EXPECT_EQ(back, record);
  }
}

TEST(JournalCodec, TruncatedPayloadIsRejectedNotUb) {
  for (const JournalRecord& record : every_op()) {
    const Bytes payload = durable::encode_record(record);
    for (std::size_t keep = 0; keep < payload.size(); ++keep) {
      const Bytes cut(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(keep));
      JournalRecord back;
      decode_record(cut, &back);  // must not crash; result unspecified
    }
  }
}

TEST(JournalCodec, OutOfDomainOpIsRejected) {
  JournalRecord record = JournalRecord::make_publish(1, 2);
  Bytes payload = durable::encode_record(record);
  // The op is the first tagged field; splat an absurd op value by
  // re-encoding from a doctored record is impossible through the API,
  // so corrupt the encoded byte instead and require a clean reject.
  bool rejected_any = false;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    Bytes bad = payload;
    bad[i] = 0xff;
    JournalRecord back;
    if (!durable::decode_record(bad, &back)) rejected_any = true;
  }
  EXPECT_TRUE(rejected_any);
}

// --- Journal file ------------------------------------------------------

class JournalFileTest : public ::testing::Test {
 protected:
  // Keyed by test name: parallel ctest processes share TempDir().
  JournalFileTest()
      : path_(temp_path(std::string("mot_journal_") +
                        ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name() +
                        ".mot")) {
    std::filesystem::remove(path_);
  }

  void write_records(const std::vector<JournalRecord>& records,
                     FsyncMode mode = FsyncMode::kNone) {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, mode));
    for (const JournalRecord& record : records) {
      ASSERT_TRUE(writer.append(record));
    }
    ASSERT_TRUE(writer.commit());
  }

  const std::string path_;
};

TEST_F(JournalFileTest, RoundTripEveryOp) {
  const std::vector<JournalRecord> records = every_op();
  write_records(records);
  const JournalReadResult result = durable::read_journal(path_);
  EXPECT_EQ(result.error, JournalError::kNone);
  EXPECT_EQ(result.truncated_bytes, 0u);
  EXPECT_EQ(result.records, records);
}

TEST_F(JournalFileTest, MissingFileIsEmptyJournal) {
  const JournalReadResult result = durable::read_journal(path_);
  EXPECT_EQ(result.error, JournalError::kNone);
  EXPECT_TRUE(result.records.empty());
}

TEST_F(JournalFileTest, EmptyFileIsEmptyJournal) {
  write_file(path_, {});
  const JournalReadResult result = durable::read_journal(path_);
  EXPECT_EQ(result.error, JournalError::kNone);
  EXPECT_TRUE(result.records.empty());
}

TEST_F(JournalFileTest, TornTailIsSilentlyDropped) {
  // A crash mid-append leaves a prefix of the last frame. Every possible
  // tear point must yield the record prefix, no error — that tail is
  // exactly what write interruption legitimately produces.
  const std::vector<JournalRecord> records = every_op();
  write_records(records);
  const Bytes full = read_file(path_);
  for (std::size_t keep = 5; keep < full.size(); ++keep) {
    write_file(path_, Bytes(full.begin(),
                            full.begin() + static_cast<std::ptrdiff_t>(keep)));
    const JournalReadResult result = durable::read_journal(path_);
    ASSERT_EQ(result.error, JournalError::kNone) << "tear at " << keep;
    ASSERT_LE(result.records.size(), records.size());
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      ASSERT_EQ(result.records[i], records[i]) << "tear at " << keep;
    }
    // Bytes kept but not parsed were reported as the torn tail.
    if (result.records.size() < records.size() && keep > 5) {
      EXPECT_EQ(result.error, JournalError::kNone);
    }
  }
}

TEST_F(JournalFileTest, BitFlippedPayloadIsCaughtByCrc) {
  const std::vector<JournalRecord> records = every_op();
  write_records(records);
  Bytes bytes = read_file(path_);
  // Flip one bit in the middle record's payload: header(5) + frames of
  // 8 + len. Locate the payload of frame records.size()/2 by walking.
  std::size_t pos = 5;
  for (std::size_t frame = 0; frame < records.size() / 2; ++frame) {
    const std::uint32_t len = static_cast<std::uint32_t>(bytes[pos]) |
                              bytes[pos + 1] << 8 | bytes[pos + 2] << 16 |
                              bytes[pos + 3] << 24;
    pos += 8 + len;
  }
  bytes[pos + 8] ^= 0x10;
  write_file(path_, bytes);
  const JournalReadResult result = durable::read_journal(path_);
  EXPECT_EQ(result.error, JournalError::kCrcMismatch);
  // The prefix before the rot is still served.
  EXPECT_EQ(result.records.size(), records.size() / 2);
}

TEST_F(JournalFileTest, GarbageTailIsTypedBadRecord) {
  const std::vector<JournalRecord> records = every_op();
  write_records(records);
  Bytes bytes = read_file(path_);
  for (int i = 0; i < 16; ++i) bytes.push_back(0xff);
  write_file(path_, bytes);
  const JournalReadResult result = durable::read_journal(path_);
  EXPECT_EQ(result.error, JournalError::kBadRecord);
  EXPECT_EQ(result.records, records);
}

TEST_F(JournalFileTest, BadMagicIsTyped) {
  write_records(every_op());
  Bytes bytes = read_file(path_);
  bytes[0] ^= 0xff;
  write_file(path_, bytes);
  EXPECT_EQ(durable::read_journal(path_).error, JournalError::kBadMagic);
}

TEST_F(JournalFileTest, FutureVersionIsTyped) {
  write_records(every_op());
  Bytes bytes = read_file(path_);
  bytes[4] = static_cast<std::uint8_t>(durable::kJournalFormatVersion + 1);
  write_file(path_, bytes);
  EXPECT_EQ(durable::read_journal(path_).error, JournalError::kBadVersion);
  bytes[4] = 0;
  write_file(path_, bytes);
  EXPECT_EQ(durable::read_journal(path_).error, JournalError::kBadVersion);
}

TEST_F(JournalFileTest, ResetCompactsToBareHeader) {
  write_records(every_op());
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, FsyncMode::kNone));
  ASSERT_TRUE(writer.reset());
  writer.close();
  const JournalReadResult result = durable::read_journal(path_);
  EXPECT_EQ(result.error, JournalError::kNone);
  EXPECT_TRUE(result.records.empty());
  // And the file is exactly a header again, appendable as usual.
  EXPECT_EQ(read_file(path_).size(), 5u);
  write_records({JournalRecord::make_publish(1, 2)});
  EXPECT_EQ(durable::read_journal(path_).records.size(), 1u);
}

TEST_F(JournalFileTest, ReopenAppendsAfterExistingRecords) {
  write_records({JournalRecord::make_publish(1, 2)});
  write_records({JournalRecord::make_proxy(3, 4)});
  const JournalReadResult result = durable::read_journal(path_);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0], JournalRecord::make_publish(1, 2));
  EXPECT_EQ(result.records[1], JournalRecord::make_proxy(3, 4));
}

// --- MutableState replay strictness ------------------------------------

TEST(MutableStateReplay, PointOpsAreStrict) {
  MutableState state;
  const OverlayNode role{1, 3};
  // Ops against state that cannot contain their target must fail: a
  // clean failure is how restore detects snapshot/journal divergence.
  EXPECT_FALSE(state.apply(JournalRecord::make_delete(role, 7)));
  EXPECT_FALSE(state.apply(JournalRecord::make_splice(role, 7, {0, 1})));
  EXPECT_FALSE(state.apply(JournalRecord::make_sp_clear(role, 7)));
  EXPECT_FALSE(state.apply(JournalRecord::make_sdl_remove(role, 7, {0, 1})));

  ASSERT_TRUE(state.apply(
      JournalRecord::make_insert(role, 7, {0, 1}, OverlayNode{2, 5})));
  // Double insert means the journal disagrees with itself.
  EXPECT_FALSE(state.apply(
      JournalRecord::make_insert(role, 7, {0, 1}, OverlayNode{2, 5})));
  EXPECT_TRUE(state.apply(JournalRecord::make_splice(role, 7, {0, 2})));
  EXPECT_TRUE(state.apply(JournalRecord::make_sp_clear(role, 7)));
  EXPECT_TRUE(state.apply(JournalRecord::make_delete(role, 7)));
  EXPECT_FALSE(state.apply(JournalRecord::make_delete(role, 7)));
}

TEST(MutableStateReplay, WipesAreTolerant) {
  MutableState state;
  // The engine-side counterparts sweep possibly-empty state; replay
  // accepts them on empty state too.
  EXPECT_TRUE(state.apply(JournalRecord::make_wipe_object(9)));
  EXPECT_TRUE(state.apply(JournalRecord::make_wipe_role({2, 4})));
  EXPECT_TRUE(state.apply(JournalRecord::make_wipe_node(4)));
}

TEST(MutableStateReplay, WipeNodeDropsEveryLevelOfThatNode) {
  MutableState state;
  ASSERT_TRUE(
      state.apply(JournalRecord::make_insert({0, 4}, 1, {0, 5}, std::nullopt)));
  ASSERT_TRUE(
      state.apply(JournalRecord::make_insert({3, 4}, 2, {2, 5}, std::nullopt)));
  ASSERT_TRUE(
      state.apply(JournalRecord::make_insert({1, 6}, 3, {0, 5}, std::nullopt)));
  ASSERT_TRUE(state.apply(JournalRecord::make_wipe_node(4)));
  const StateImage image = state.to_image();
  ASSERT_EQ(image.roles.size(), 1u);
  EXPECT_EQ(image.roles[0].role, (OverlayNode{1, 6}));
}

TEST(MutableStateReplay, ImageRoundTripIsCanonical) {
  MutableState state;
  ASSERT_TRUE(state.apply(JournalRecord::make_publish(5, 9)));
  ASSERT_TRUE(
      state.apply(JournalRecord::make_insert({2, 1}, 5, {1, 3}, std::nullopt)));
  ASSERT_TRUE(state.apply(JournalRecord::make_sdl_add({3, 2}, 5, {2, 1})));
  ASSERT_TRUE(state.apply(JournalRecord::make_sdl_add({3, 2}, 5, {2, 6})));
  const StateImage image = state.to_image();
  // Rehydrate from the image: identical image (and digest) back out.
  MutableState again(image);
  EXPECT_EQ(again.to_image(), image);
  EXPECT_EQ(again.to_image().digest(), image.digest());
  // SDL children preserve registration order through the round trip.
  ASSERT_EQ(image.roles.size(), 2u);
  ASSERT_EQ(image.roles[1].sdl.size(), 1u);
  EXPECT_EQ(image.roles[1].sdl[0].children,
            (std::vector<OverlayNode>{{2, 1}, {2, 6}}));
}

// --- Snapshot codec ----------------------------------------------------

struct SnapshotWorld {
  SnapshotWorld()
      : graph(make_grid(6, 6)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 11;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
  }

  StateImage sample_image() const {
    MutableState state;
    state.apply(JournalRecord::make_publish(0, 3));
    state.apply(JournalRecord::make_publish(1, 17));
    state.apply(
        JournalRecord::make_insert({0, 3}, 0, {0, 3}, OverlayNode{1, 2}));
    state.apply(JournalRecord::make_sdl_add({1, 2}, 0, {0, 3}));
    return state.to_image();
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
};

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const SnapshotWorld world;
  const StateImage image = world.sample_image();
  const std::uint64_t fp = durable::world_fingerprint(world.graph);
  const Bytes bytes =
      durable::encode_snapshot(fp, world.hierarchy->export_state(), image);
  const durable::SnapshotDecodeResult result = durable::decode_snapshot(bytes);
  ASSERT_EQ(result.error, RestoreError::kNone);
  EXPECT_EQ(result.fingerprint, fp);
  EXPECT_EQ(result.hierarchy, world.hierarchy->export_state());
  EXPECT_EQ(result.image, image);
}

TEST(Snapshot, EveryTruncationYieldsTypedErrorNeverCrash) {
  const SnapshotWorld world;
  const Bytes bytes = durable::encode_snapshot(
      durable::world_fingerprint(world.graph),
      world.hierarchy->export_state(), world.sample_image());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const Bytes cut(bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    const durable::SnapshotDecodeResult result = durable::decode_snapshot(cut);
    EXPECT_NE(result.error, RestoreError::kNone) << "kept " << keep;
  }
}

TEST(Snapshot, BitRotIsCaughtByWholeFileCrc) {
  const SnapshotWorld world;
  Bytes bytes = durable::encode_snapshot(
      durable::world_fingerprint(world.graph),
      world.hierarchy->export_state(), world.sample_image());
  Rng rng(13);
  for (int trial = 0; trial < 64; ++trial) {
    Bytes bad = bytes;
    // Flip past the CRC field itself (bytes 4..8 guard the payload).
    const std::size_t at = 8 + rng.below(bad.size() - 8);
    bad[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    const durable::SnapshotDecodeResult result = durable::decode_snapshot(bad);
    EXPECT_NE(result.error, RestoreError::kNone) << "flip at " << at;
  }
}

TEST(Snapshot, BadMagicAndBadVersionAreTyped) {
  const SnapshotWorld world;
  const Bytes bytes = durable::encode_snapshot(
      durable::world_fingerprint(world.graph),
      world.hierarchy->export_state(), world.sample_image());
  Bytes bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_EQ(durable::decode_snapshot(bad).error, RestoreError::kBadMagic);

  // Version is payload byte 0 (offset 8); the CRC must be recomputed or
  // the flip reads as rot instead of a version gap.
  bad = bytes;
  bad[8] = static_cast<std::uint8_t>(durable::kSnapshotFormatVersion + 1);
  const std::uint32_t crc = durable::crc32(
      std::span<const std::uint8_t>(bad.data() + 8, bad.size() - 8));
  bad[4] = static_cast<std::uint8_t>(crc);
  bad[5] = static_cast<std::uint8_t>(crc >> 8);
  bad[6] = static_cast<std::uint8_t>(crc >> 16);
  bad[7] = static_cast<std::uint8_t>(crc >> 24);
  EXPECT_EQ(durable::decode_snapshot(bad).error, RestoreError::kBadVersion);
}

TEST(Snapshot, DecoderSkipsUnknownPayloadFields) {
  // A v(N+1) writer appends a new tagged field to the payload; the
  // current decoder must step over it and load the fields it knows.
  const SnapshotWorld world;
  const StateImage image = world.sample_image();
  const std::uint64_t fp = durable::world_fingerprint(world.graph);
  Bytes bytes =
      durable::encode_snapshot(fp, world.hierarchy->export_state(), image);
  bytes.push_back(0x78);  // tag 15, varint
  bytes.push_back(0x07);
  const std::uint32_t crc = durable::crc32(
      std::span<const std::uint8_t>(bytes.data() + 8, bytes.size() - 8));
  bytes[4] = static_cast<std::uint8_t>(crc);
  bytes[5] = static_cast<std::uint8_t>(crc >> 8);
  bytes[6] = static_cast<std::uint8_t>(crc >> 16);
  bytes[7] = static_cast<std::uint8_t>(crc >> 24);
  const durable::SnapshotDecodeResult result =
      durable::decode_snapshot(bytes);
  ASSERT_EQ(result.error, RestoreError::kNone);
  EXPECT_EQ(result.fingerprint, fp);
  EXPECT_EQ(result.image, image);
}

TEST(Snapshot, WriteFileIsAtomicAndReadsBack) {
  const SnapshotWorld world;
  const Bytes bytes = durable::encode_snapshot(
      durable::world_fingerprint(world.graph),
      world.hierarchy->export_state(), world.sample_image());
  const std::string path = temp_path("mot_snapshot_test.mot");
  ASSERT_TRUE(durable::write_snapshot_file(path, bytes));
  const durable::SnapshotDecodeResult result =
      durable::read_snapshot_file(path);
  EXPECT_EQ(result.error, RestoreError::kNone);
  std::filesystem::remove(path);
  EXPECT_EQ(durable::read_snapshot_file(path).error,
            RestoreError::kNoSnapshot);
}

// --- Hierarchy state rehydration ---------------------------------------

TEST(Snapshot, HierarchyFromStateMatchesBuild) {
  const SnapshotWorld world;
  const DoublingHierarchy::State state = world.hierarchy->export_state();
  const std::unique_ptr<DoublingHierarchy> again =
      DoublingHierarchy::from_state(world.graph, *world.oracle, state);
  ASSERT_NE(again, nullptr);
  // Same CSR back out, and the derived query surface agrees everywhere.
  EXPECT_EQ(again->export_state(), state);
  EXPECT_EQ(again->height(), world.hierarchy->height());
  EXPECT_EQ(again->root(), world.hierarchy->root());
  for (NodeId u = 0; u < world.graph.num_nodes(); ++u) {
    for (int level = 0; level <= world.hierarchy->height(); ++level) {
      EXPECT_EQ(again->home(u, level), world.hierarchy->home(u, level));
    }
  }
}

TEST(Snapshot, InvalidHierarchyStateIsRejectedNotFatal) {
  const SnapshotWorld world;
  DoublingHierarchy::State state = world.hierarchy->export_state();
  state.levels.back().member_list = {kInvalidNode};
  EXPECT_EQ(DoublingHierarchy::from_state(world.graph, *world.oracle, state),
            nullptr);
  DoublingHierarchy::State empty;
  EXPECT_EQ(DoublingHierarchy::from_state(world.graph, *world.oracle, empty),
            nullptr);
}

// --- DurableStore end-to-end -------------------------------------------

struct TrackerWorld {
  explicit TrackerWorld(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

class DurableStoreTest : public ::testing::Test {
 protected:
  // Keyed by test name: ctest runs each test in its own process, in
  // parallel, and they all see the same TempDir().
  DurableStoreTest()
      : dir_(temp_path(std::string("mot_durable_store_") +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name())) {
    std::filesystem::remove_all(dir_);
  }
  ~DurableStoreTest() override { std::filesystem::remove_all(dir_); }

  const std::string dir_;
};

TEST_F(DurableStoreTest, ChainTrackerRestoreParity) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());

  ChainTracker live("mot", *world.provider, world.chain_options);
  live.use_durability(&store);
  Rng rng(21);
  const std::size_t n = world.graph.num_nodes();
  for (ObjectId object = 0; object < 12; ++object) {
    live.publish(object, static_cast<NodeId>(rng.below(n)));
  }
  for (int m = 0; m < 60; ++m) {
    if (m == 30) {
      // Snapshot mid-stream: restore must replay the journal suffix.
      ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                       live.export_durable_image()));
    }
    live.move(static_cast<ObjectId>(rng.below(12)),
              static_cast<NodeId>(rng.below(n)));
  }
  store.commit();

  const DurableStore::RestoreResult restored = store.restore(world.graph);
  ASSERT_EQ(restored.error, RestoreError::kNone);
  EXPECT_GT(restored.journal_replayed, 0u);
  EXPECT_EQ(restored.hierarchy, world.hierarchy->export_state());
  EXPECT_EQ(restored.image, live.export_durable_image());

  ChainTracker revived("mot", *world.provider, world.chain_options);
  revived.restore_durable_image(restored.image);
  revived.validate_all();
  EXPECT_EQ(revived.export_durable_image().digest(),
            live.export_durable_image().digest());
  for (ObjectId object = 0; object < 12; ++object) {
    const QueryResult expected = live.query(5, object);
    const QueryResult got = revived.query(5, object);
    ASSERT_TRUE(got.found);
    EXPECT_EQ(got.proxy, expected.proxy) << "object " << object;
  }
}

TEST_F(DurableStoreTest, DisabledDurabilityIsBitIdentical) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());

  ChainTracker plain("mot", *world.provider, world.chain_options);
  ChainTracker journaled("mot", *world.provider, world.chain_options);
  journaled.use_durability(&store);
  Rng rng_a(33);
  Rng rng_b(33);
  const std::size_t n = world.graph.num_nodes();
  double cost_a = 0.0;
  double cost_b = 0.0;
  for (ObjectId object = 0; object < 8; ++object) {
    plain.publish(object, static_cast<NodeId>(rng_a.below(n)));
    journaled.publish(object, static_cast<NodeId>(rng_b.below(n)));
  }
  for (int m = 0; m < 40; ++m) {
    cost_a += plain.move(static_cast<ObjectId>(rng_a.below(8)),
                         static_cast<NodeId>(rng_a.below(n)))
                  .cost;
    cost_b += journaled.move(static_cast<ObjectId>(rng_b.below(8)),
                             static_cast<NodeId>(rng_b.below(n)))
                  .cost;
  }
  // Journaling changes nothing observable: identical costs, identical
  // canonical state.
  EXPECT_EQ(cost_a, cost_b);
  EXPECT_EQ(plain.export_durable_image(), journaled.export_durable_image());
}

TEST_F(DurableStoreTest, SnapshotCompactsTheJournal) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());

  ChainTracker live("mot", *world.provider, world.chain_options);
  live.use_durability(&store);
  live.publish(0, 5);
  live.move(0, 9);
  ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                   live.export_durable_image()));
  // Compaction: the journal is a bare header again; restore replays 0.
  EXPECT_TRUE(durable::read_journal(store.journal_path()).records.empty());
  const DurableStore::RestoreResult restored = store.restore(world.graph);
  ASSERT_EQ(restored.error, RestoreError::kNone);
  EXPECT_EQ(restored.journal_replayed, 0u);
  EXPECT_EQ(restored.image, live.export_durable_image());
  EXPECT_GT(store.stats().snapshot_bytes, 0u);
  EXPECT_EQ(store.stats().snapshots_written, 1u);
}

TEST_F(DurableStoreTest, MissingSnapshotIsTyped) {
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());
  const TrackerWorld world;
  const DurableStore::RestoreResult restored = store.restore(world.graph);
  EXPECT_EQ(restored.error, RestoreError::kNoSnapshot);
  // First boot is not a failure: no fallback is counted and nothing is
  // dumped — only present-but-unusable data trips the fallback meters.
  EXPECT_EQ(store.stats().restore_fallbacks, 0u);
}

TEST_F(DurableStoreTest, WorldMismatchIsRefused) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());
  ChainTracker live("mot", *world.provider, world.chain_options);
  live.use_durability(&store);
  live.publish(0, 5);
  ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                   live.export_durable_image()));
  // A different network must not accept this snapshot.
  const Graph other = make_grid(5, 5);
  EXPECT_EQ(store.restore(other).error, RestoreError::kWorldMismatch);
}

TEST_F(DurableStoreTest, CorruptJournalFallsBackTyped) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());
  ChainTracker live("mot", *world.provider, world.chain_options);
  live.use_durability(&store);
  live.publish(0, 5);
  ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                   live.export_durable_image()));
  live.move(0, 9);
  live.move(0, 14);
  store.commit();
  // Rot one payload byte of the journal suffix.
  Bytes bytes = read_file(store.journal_path());
  ASSERT_GT(bytes.size(), 14u);
  bytes[13] ^= 0x20;
  write_file(store.journal_path(), bytes);
  const DurableStore::RestoreResult restored = store.restore(world.graph);
  EXPECT_EQ(restored.error, RestoreError::kJournalError);
  EXPECT_NE(restored.journal_error, JournalError::kNone);
  EXPECT_GE(store.stats().restore_fallbacks, 1u);
}

TEST_F(DurableStoreTest, ReplayMismatchFallsBackTyped) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());
  ChainTracker live("mot", *world.provider, world.chain_options);
  live.use_durability(&store);
  live.publish(0, 5);
  ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                   live.export_durable_image()));
  // A journal that deletes an entry the snapshot never held: replay
  // must refuse (strict point ops), not silently produce drift.
  store.record(JournalRecord::make_delete({0, 60}, 55));
  store.commit();
  EXPECT_EQ(store.restore(world.graph).error, RestoreError::kReplayFailed);
}

TEST_F(DurableStoreTest, StatsExportToRegistryAndPrometheus) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());
  ChainTracker live("mot", *world.provider, world.chain_options);
  live.use_durability(&store);
  live.publish(0, 5);
  live.move(0, 9);
  ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                   live.export_durable_image()));
  obs::MetricsRegistry registry;
  durable::export_durable_stats(store.stats(), registry);
  const std::string prom = registry.to_prometheus();
  for (const char* name :
       {"snapshot_bytes", "journal_records", "journal_replayed",
        "restore_fallbacks", "snapshots_written"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  EXPECT_GT(registry.gauge("snapshot_bytes").value(), 0.0);
  EXPECT_GT(registry.counter("journal_records").value(), 0.0);
}

TEST_F(DurableStoreTest, DistributedMotRestoreParity) {
  const TrackerWorld world;
  DurableStore store({dir_, FsyncMode::kGroup});
  ASSERT_TRUE(store.ok());

  Simulator sim;
  proto::DistributedMot dist(*world.provider, sim, world.chain_options);
  dist.use_durability(&store);
  Rng rng(5);
  const std::size_t n = world.graph.num_nodes();
  for (ObjectId object = 0; object < 6; ++object) {
    dist.publish(object, static_cast<NodeId>(rng.below(n)));
    sim.run();
  }
  for (int m = 0; m < 30; ++m) {
    if (m == 15) {
      ASSERT_TRUE(store.write_snapshot(world.graph, *world.hierarchy,
                                       dist.export_durable_image()));
    }
    dist.move(static_cast<ObjectId>(rng.below(6)),
              static_cast<NodeId>(rng.below(n)), {});
    sim.run();
  }
  store.commit();

  const DurableStore::RestoreResult restored = store.restore(world.graph);
  ASSERT_EQ(restored.error, RestoreError::kNone);
  EXPECT_EQ(restored.image, dist.export_durable_image());

  Simulator sim2;
  proto::DistributedMot revived(*world.provider, sim2, world.chain_options);
  revived.restore_durable_image(restored.image);
  EXPECT_TRUE(revived.invariant_violations().empty());
  for (ObjectId object = 0; object < 6; ++object) {
    const QueryResult expected = [&] {
      QueryResult r;
      dist.query(3, object, [&](const QueryResult& got) { r = got; });
      sim.run();
      return r;
    }();
    QueryResult got;
    revived.query(3, object, [&](const QueryResult& r) { got = r; });
    sim2.run();
    ASSERT_TRUE(got.found);
    EXPECT_EQ(got.proxy, expected.proxy) << "object " << object;
  }
}

}  // namespace
}  // namespace mot
