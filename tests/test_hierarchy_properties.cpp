// Property sweeps: the structural lemmas of Section 2 checked across
// seeds and graph families (parameterized), not just single fixtures.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"

namespace mot {
namespace {

enum class Family { kGrid, kTorus, kGeometric, kRing };

const char* family_name(Family family) {
  switch (family) {
    case Family::kGrid:
      return "Grid";
    case Family::kTorus:
      return "Torus";
    case Family::kGeometric:
      return "Geometric";
    case Family::kRing:
      return "Ring";
  }
  return "?";
}

Graph make_family(Family family, std::uint64_t seed) {
  switch (family) {
    case Family::kGrid:
      return make_grid(9, 9);
    case Family::kTorus:
      return make_torus(8, 8);
    case Family::kGeometric: {
      Rng rng(seed * 77 + 5);
      return make_random_geometric(70, 10.0, 2.6, rng, 64, 0.5);
    }
    case Family::kRing:
      return make_ring(50);
  }
  return Graph{};
}

using Param = std::tuple<Family, std::uint64_t>;

class HierarchyPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [family, seed] = GetParam();
    graph_ = make_family(family, seed);
    oracle_ = make_distance_oracle(graph_);
    DoublingHierarchy::Params params;
    params.seed = seed;
    hierarchy_ = DoublingHierarchy::build(graph_, *oracle_, params);
  }

  Graph graph_;
  std::unique_ptr<DistanceOracle> oracle_;
  std::unique_ptr<DoublingHierarchy> hierarchy_;
};

TEST_P(HierarchyPropertyTest, NestedLevelsEndInSingleRoot) {
  for (int level = 1; level <= hierarchy_->height(); ++level) {
    for (const NodeId member : hierarchy_->members(level)) {
      ASSERT_TRUE(hierarchy_->is_member(level - 1, member));
    }
    ASSERT_LE(hierarchy_->members(level).size(),
              hierarchy_->members(level - 1).size());
  }
  EXPECT_EQ(hierarchy_->members(hierarchy_->height()).size(), 1u);
}

TEST_P(HierarchyPropertyTest, LevelSeparationInvariant) {
  // Members of V_l are pairwise > 2^l apart (MIS of the dist < 2^l graph).
  for (int level = 1; level <= hierarchy_->height(); ++level) {
    const auto members = hierarchy_->members(level);
    const Weight separation = std::ldexp(1.0, level);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        ASSERT_GE(oracle_->distance(members[i], members[j]), separation);
      }
    }
  }
}

TEST_P(HierarchyPropertyTest, DefaultParentWithinMaximalityRadius) {
  for (int level = 0; level < hierarchy_->height(); ++level) {
    const Weight radius = std::ldexp(1.0, level + 1);
    for (const NodeId member : hierarchy_->members(level)) {
      const NodeId parent = hierarchy_->default_parent(level, member);
      ASSERT_TRUE(hierarchy_->is_member(level + 1, parent));
      ASSERT_LE(oracle_->distance(member, parent), radius);
    }
  }
}

TEST_P(HierarchyPropertyTest, Lemma21MeetLevel) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const auto u = static_cast<NodeId>(rng.below(graph_.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(graph_.num_nodes()));
    if (u == v) continue;
    const Weight dist = oracle_->distance(u, v);
    const int meet_level =
        std::min(hierarchy_->height(),
                 static_cast<int>(std::ceil(std::log2(dist))) + 1);
    bool met = false;
    for (int level = 1; level <= meet_level && !met; ++level) {
      const auto gu = hierarchy_->group(u, level);
      const auto gv = hierarchy_->group(v, level);
      for (const NodeId x : gu) {
        if (std::binary_search(gv.begin(), gv.end(), x)) {
          met = true;
          break;
        }
      }
    }
    ASSERT_TRUE(met) << "u=" << u << " v=" << v << " dist=" << dist;
  }
}

TEST_P(HierarchyPropertyTest, Lemma22PathLengthGeometric) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const auto u = static_cast<NodeId>(rng.below(graph_.num_nodes()));
    for (int level = 1; level <= hierarchy_->height(); ++level) {
      // 2^{3 rho + 6}-style constant: generous 512 covers every family
      // here (rho <= 3).
      ASSERT_LE(hierarchy_->detection_path_length(u, level),
                512.0 * std::ldexp(1.0, level));
    }
  }
}

TEST_P(HierarchyPropertyTest, GroupsConsistentWithClusters) {
  // Every group member is a level member, groups are sorted, and the
  // cluster of every internal node contains its center.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto u = static_cast<NodeId>(rng.below(graph_.num_nodes()));
    for (int level = 1; level <= hierarchy_->height(); ++level) {
      const auto group = hierarchy_->group(u, level);
      ASSERT_TRUE(std::is_sorted(group.begin(), group.end()));
      for (const NodeId member : group) {
        ASSERT_TRUE(hierarchy_->is_member(level, member));
        const auto cluster = hierarchy_->cluster(level, member);
        ASSERT_TRUE(
            std::binary_search(cluster.begin(), cluster.end(), member));
      }
    }
  }
}

std::string property_param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [family, seed] = info.param;
  return std::string(family_name(family)) + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, HierarchyPropertyTest,
    ::testing::Combine(::testing::Values(Family::kGrid, Family::kTorus,
                                         Family::kGeometric, Family::kRing),
                       ::testing::Values(1u, 2u, 3u)),
    property_param_name);

}  // namespace
}  // namespace mot
