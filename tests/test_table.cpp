#include "util/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace mot {
namespace {

TEST(Table, BuildsAndReadsBack) {
  Table table({"name", "value"});
  table.begin_row().cell("alpha").cell(std::uint64_t{42});
  table.begin_row().cell("beta").cell(3.14159, 2);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.at(0, 0), "alpha");
  EXPECT_EQ(table.at(0, 1), "42");
  EXPECT_EQ(table.at(1, 1), "3.14");
}

TEST(Table, PrintAlignsColumns) {
  Table table({"a", "longer"});
  table.begin_row().cell("x").cell("y");
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"c1", "c2"});
  table.begin_row().cell("has,comma").cell("has\"quote");
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "c1,c2\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table table({"x"});
  table.begin_row().cell("plain");
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "x\nplain\n");
}

TEST(Table, NegativeIntegerCell) {
  Table table({"v"});
  table.begin_row().cell(std::int64_t{-7});
  EXPECT_EQ(table.at(0, 0), "-7");
}

TEST(WriteTextFile, RoundTripsAndCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mot_table_test" / "nested";
  const auto path = (dir / "out.txt").string();
  std::filesystem::remove_all(dir.parent_path());
  ASSERT_TRUE(write_text_file(path, "hello\n"));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "hello\n");
  std::filesystem::remove_all(dir.parent_path());
}

TEST(WriteTextFile, AppendStacksInsteadOfTruncating) {
  const auto dir = std::filesystem::temp_directory_path() / "mot_table_test";
  const auto path = (dir / "append.txt").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(write_text_file(path, "first\n"));
  ASSERT_TRUE(write_text_file(path, "second\n", /*append=*/true));
  ASSERT_TRUE(write_text_file(path, "third\n"));  // truncates again
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "third\n");
  ASSERT_TRUE(write_text_file(path, "fourth\n", /*append=*/true));
  std::ifstream again(path);
  contents.assign((std::istreambuf_iterator<char>(again)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "third\nfourth\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mot
