// Overload resilience: bounded-queue admission control (with structural
// priority-inversion impossibility), deterministic RED shedding, the
// circuit-breaker state machine, the finite-capacity service model's
// conservation ledger, and the protocol-level behaviors — shed frames
// rescued by retransmission, graceful query degradation with a checked
// staleness bound, sibling redirects off hot chain hops, credit-window
// backpressure, and bit-for-bit deterministic overloaded runs.
#include "overload/circuit_breaker.hpp"
#include "overload/node_queue.hpp"
#include "overload/overload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "chaos/schedule.hpp"
#include "core/mot.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/service_model.hpp"
#include "tracking/chain_tracker.hpp"

namespace mot {
namespace {

using overload::Admit;
using overload::BoundedNodeQueue;
using overload::CircuitBreaker;
using overload::OverloadConfig;
using overload::Priority;
using proto::DistributedMot;

std::function<void()> noop() {
  return [] {};
}

// ---------------------------------------------------------------------------
// OverloadConfig
// ---------------------------------------------------------------------------

TEST(OverloadConfig, AdmitLimitsAreMonotoneAndNeverZero) {
  OverloadConfig config;
  config.queue_capacity = 20;
  std::size_t previous = config.queue_capacity;
  for (std::size_t c = 0; c < overload::kNumClasses; ++c) {
    const std::size_t limit =
        config.admit_limit(static_cast<Priority>(c));
    EXPECT_GE(limit, 1u);
    EXPECT_LE(limit, previous);  // monotone: higher class, higher limit
    previous = limit;
  }
  EXPECT_EQ(config.admit_limit(Priority::kRecovery), 20u);
  EXPECT_EQ(config.admit_limit(Priority::kQuery), 10u);

  // Even a capacity-1 node admits one message of every class.
  config.queue_capacity = 1;
  for (std::size_t c = 0; c < overload::kNumClasses; ++c) {
    EXPECT_EQ(config.admit_limit(static_cast<Priority>(c)), 1u);
  }
  EXPECT_GE(config.high_watermark(), 1u);
}

// ---------------------------------------------------------------------------
// BoundedNodeQueue admission
// ---------------------------------------------------------------------------

TEST(OverloadQueue, AdmitsToTheClassLimitThenShedsCapacity) {
  OverloadConfig config;
  config.queue_capacity = 8;   // query limit = 4
  config.red_fraction = 1.0;   // disable the RED ramp
  BoundedNodeQueue queue(&config);
  Rng red(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.offer(0.0, Priority::kQuery, noop(), red),
              Admit::kAdmit);
  }
  EXPECT_EQ(queue.offer(0.0, Priority::kQuery, noop(), red),
            Admit::kShedCapacity);
  EXPECT_EQ(queue.depth(), 4u);  // sheds leave the queue untouched
}

TEST(OverloadQueue, RecoveryIsAdmittedWhereQueriesAreShed) {
  // Priority inversion is structurally impossible: at any depth where a
  // high class is refused, every lower class is refused too — so fill
  // the queue past the query limit and watch recovery still get in.
  OverloadConfig config;
  config.queue_capacity = 8;  // query 4, maintenance 6, transport 7
  config.red_fraction = 1.0;
  BoundedNodeQueue queue(&config);
  Rng red(1);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(queue.offer(0.0, Priority::kMaintenance, noop(), red),
              Admit::kAdmit);
  }
  EXPECT_EQ(queue.offer(0.0, Priority::kQuery, noop(), red),
            Admit::kShedCapacity);
  EXPECT_EQ(queue.offer(0.0, Priority::kMaintenance, noop(), red),
            Admit::kShedCapacity);
  EXPECT_EQ(queue.offer(0.0, Priority::kTransport, noop(), red),
            Admit::kAdmit);
  EXPECT_EQ(queue.offer(0.0, Priority::kRecovery, noop(), red),
            Admit::kAdmit);
  EXPECT_EQ(queue.depth(), 8u);
  EXPECT_EQ(queue.offer(0.0, Priority::kRecovery, noop(), red),
            Admit::kShedCapacity);  // hard capacity binds even recovery
}

TEST(OverloadQueue, DeadlineBudgetShedsProjectedLateMessages) {
  OverloadConfig config;
  config.queue_capacity = 16;
  config.service_rate = 1.0;
  config.red_fraction = 1.0;
  config.delay_budget[static_cast<std::size_t>(Priority::kMaintenance)] =
      2.5;  // shed once 3 messages are already waiting
  BoundedNodeQueue queue(&config);
  Rng red(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.offer(0.0, Priority::kMaintenance, noop(), red),
              Admit::kAdmit);
  }
  EXPECT_EQ(queue.offer(0.0, Priority::kMaintenance, noop(), red),
            Admit::kShedDeadline);
  // Classes without a budget are untouched by it.
  EXPECT_EQ(queue.offer(0.0, Priority::kRecovery, noop(), red),
            Admit::kAdmit);
}

TEST(OverloadQueue, RedEarlyDropIsSeededAndDeterministic) {
  OverloadConfig config;
  config.queue_capacity = 16;  // query limit 8, RED onset at 4
  const auto pattern = [&config](std::uint64_t seed) {
    BoundedNodeQueue queue(&config);
    Rng red(seed);
    std::vector<Admit> outcomes;
    for (int i = 0; i < 30; ++i) {
      outcomes.push_back(queue.offer(0.0, Priority::kQuery, noop(), red));
      // Drain one slot whenever the class limit is reached so every
      // later offer lands in the RED ramp region instead of the
      // draw-free hard-capacity shed.
      if (queue.depth() >= config.admit_limit(Priority::kQuery)) {
        queue.take().run();
      }
    }
    return outcomes;
  };
  const std::vector<Admit> a = pattern(7);
  EXPECT_EQ(a, pattern(7));   // bit-identical replay
  EXPECT_NE(a, pattern(8));   // and the seed matters
  int early = 0;
  for (const Admit outcome : a) {
    if (outcome == Admit::kShedEarly) ++early;
  }
  EXPECT_GT(early, 0);  // the ramp reaches p = 1 just under the limit
}

TEST(OverloadQueue, ServiceOrderFollowsClassThenFifo) {
  OverloadConfig config;
  config.queue_capacity = 16;
  config.red_fraction = 1.0;
  BoundedNodeQueue queue(&config);
  Rng red(1);
  std::vector<int> order;
  const auto tag = [&order](int id) {
    return [&order, id] { order.push_back(id); };
  };
  queue.offer(0.0, Priority::kQuery, tag(0), red);
  queue.offer(0.0, Priority::kMaintenance, tag(1), red);
  queue.offer(0.0, Priority::kRecovery, tag(2), red);
  queue.offer(0.0, Priority::kMaintenance, tag(3), red);
  while (!queue.empty()) queue.take().run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3, 0}));

  // The FIFO discipline ignores classes entirely.
  config.discipline = overload::QueueDiscipline::kFifo;
  BoundedNodeQueue fifo(&config);
  order.clear();
  fifo.offer(0.0, Priority::kQuery, tag(0), red);
  fifo.offer(0.0, Priority::kMaintenance, tag(1), red);
  fifo.offer(0.0, Priority::kRecovery, tag(2), red);
  while (!fifo.empty()) fifo.take().run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(OverloadBreaker, TripsAfterConsecutiveTimeoutsAndResetsOnSuccess) {
  CircuitBreaker breaker(/*threshold=*/3, /*cooldown=*/10.0);
  EXPECT_FALSE(breaker.on_timeout(0.0, 1));
  EXPECT_FALSE(breaker.on_timeout(1.0, 2));
  EXPECT_FALSE(breaker.open());
  breaker.on_success();  // a success anywhere resets the streak
  EXPECT_EQ(breaker.consecutive_timeouts(), 0);
  EXPECT_FALSE(breaker.on_timeout(2.0, 3));
  EXPECT_FALSE(breaker.on_timeout(3.0, 4));
  EXPECT_TRUE(breaker.on_timeout(4.0, 5));  // third in a row trips it
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(OverloadBreaker, HalfOpenElectsOneProbeAndClosesOnItsAck) {
  CircuitBreaker breaker(2, 10.0);
  breaker.on_timeout(0.0, 1);
  ASSERT_TRUE(breaker.on_timeout(1.0, 2));  // opens at t=1
  EXPECT_EQ(breaker.gate(5.0, 7), CircuitBreaker::Gate::kBlocked);
  // Cooldown elapsed: the first asker is elected the probe...
  EXPECT_EQ(breaker.gate(12.0, 7), CircuitBreaker::Gate::kProbe);
  // ...everyone else stays parked...
  EXPECT_EQ(breaker.gate(12.5, 8), CircuitBreaker::Gate::kBlocked);
  // ...and the probe's own retry is re-elected, so a lost probe cannot
  // wedge the link.
  EXPECT_EQ(breaker.gate(13.0, 7), CircuitBreaker::Gate::kProbe);
  EXPECT_TRUE(breaker.on_success());  // probe acked: closed
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.gate(14.0, 9), CircuitBreaker::Gate::kPass);
}

TEST(OverloadBreaker, ProbeTimeoutReopensForAnotherCooldown) {
  CircuitBreaker breaker(2, 10.0);
  breaker.on_timeout(0.0, 1);
  ASSERT_TRUE(breaker.on_timeout(1.0, 2));
  ASSERT_EQ(breaker.gate(12.0, 5), CircuitBreaker::Gate::kProbe);
  EXPECT_TRUE(breaker.on_timeout(12.5, 5));  // probe died: re-open
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_EQ(breaker.gate(13.0, 6), CircuitBreaker::Gate::kBlocked);
  // A non-probe frame's late timeout while open carries no evidence.
  EXPECT_EQ(breaker.gate(23.0, 6), CircuitBreaker::Gate::kProbe);
  EXPECT_FALSE(breaker.on_timeout(23.1, 99));
  EXPECT_TRUE(breaker.on_success());
}

// ---------------------------------------------------------------------------
// ServiceModel
// ---------------------------------------------------------------------------

TEST(OverloadService, DrainsAdmittedWorkAndBalancesTheLedger) {
  Simulator sim;
  OverloadConfig config;
  config.service_rate = 2.0;
  config.queue_capacity = 32;
  ServiceModel service(sim, /*num_nodes=*/4, config);
  std::vector<int> ran;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(service.offer(1, Priority::kMaintenance,
                            [&ran, i] { ran.push_back(i); }),
              Admit::kAdmit);
  }
  EXPECT_GT(service.depth(1), 0u);
  sim.run();
  EXPECT_EQ(ran.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ran[i], i);  // FIFO in class
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.arrivals, 10u);
  EXPECT_EQ(stats.admitted, 10u);
  EXPECT_EQ(stats.serviced, 10u);
  EXPECT_EQ(service.total_queued(), 0u);
  EXPECT_TRUE(service.conserved());
  EXPECT_EQ(service.queue_delays().count(), 10u);
  // Each service slot takes 1/rate: the last of 10 messages waited.
  EXPECT_GT(service.queue_delays().max(), 0.0);
}

TEST(OverloadService, ShedsPastCapacityAndReportsHeadroom) {
  Simulator sim;
  OverloadConfig config;
  config.service_rate = 1.0;
  config.queue_capacity = 4;  // query limit 2
  config.red_fraction = 1.0;
  ServiceModel service(sim, 2, config);
  EXPECT_EQ(service.headroom(0), 2u);
  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    if (service.offer(0, Priority::kQuery, noop()) != Admit::kAdmit) {
      ++shed;
    }
  }
  // The first admit goes straight into the busy slot, so the 2-deep
  // query lane holds two more: 3 admitted, 3 refused.
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(service.headroom(0), 0u);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.arrivals, 6u);
  EXPECT_EQ(stats.shed_total(), 3u);
  EXPECT_EQ(stats.shed_by_class[static_cast<std::size_t>(Priority::kQuery)],
            3u);
  EXPECT_TRUE(service.conserved());
  sim.run();
  EXPECT_EQ(service.stats().serviced, 3u);
  EXPECT_EQ(service.total_queued(), 0u);
  EXPECT_GE(service.stats().max_depth, 1u);
}

// ---------------------------------------------------------------------------
// Protocol integration
// ---------------------------------------------------------------------------

struct Fixture {
  explicit Fixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// One overloaded run: publish `objects`, then flood `flood` concurrent
// queries for object 0 from seeded origins, then drain. Returns the
// results in issue order.
struct FloodOutcome {
  std::vector<QueryResult> results;
  proto::ProtocolStats stats;
  ServiceStats service_stats;
  std::vector<std::string> violations;
  NodeId true_position = 0;  // where object 0 actually lives
};

FloodOutcome run_flood(const Fixture& fx, const OverloadConfig& config,
                       int flood, std::uint64_t seed,
                       const faults::FaultPlan& plan = {}) {
  FloodOutcome out;
  Simulator sim;
  faults::UnreliableChannel channel(plan,
                                    SeedTree(seed).seed_for("channel"));
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);
  dist.replicate_detection_lists(true);
  ServiceModel service(sim, fx.graph.num_nodes(), config);
  dist.use_overload(&service);

  Rng rng = SeedTree(seed).stream("flood");
  const std::size_t n = fx.graph.num_nodes();
  for (ObjectId o = 0; o < 4; ++o) dist.publish(o, rng.below(n));
  sim.run();

  out.results.resize(static_cast<std::size_t>(flood));
  for (int i = 0; i < flood; ++i) {
    dist.query(rng.below(n), /*object=*/0,
               [&out, i](const QueryResult& r) {
                 out.results[static_cast<std::size_t>(i)] = r;
               });
  }
  sim.run();
  out.stats = dist.stats();
  out.service_stats = service.stats();
  out.violations = dist.invariant_violations();
  out.true_position = dist.physical_position(0);
  return out;
}

TEST(OverloadProto, HugeCapacityMatchesTheLegacyRuntime) {
  Fixture fx;
  const std::uint64_t seed = 11;
  const std::size_t n = fx.graph.num_nodes();

  // Drive the identical workload with and without a (practically
  // unconstrained) service model; answers, costs and placements must
  // agree — the service layer reorders time, not outcomes.
  const auto run = [&](bool with_service) {
    Simulator sim;
    faults::FaultPlan plan;
    faults::UnreliableChannel channel(plan,
                                      SeedTree(seed).seed_for("channel"));
    DistributedMot dist(*fx.provider, sim, fx.chain_options);
    dist.use_channel(&channel);
    std::unique_ptr<ServiceModel> service;
    if (with_service) {
      OverloadConfig config;
      config.service_rate = 1000.0;
      config.queue_capacity = 100000;
      service = std::make_unique<ServiceModel>(sim, n, config);
      dist.use_overload(service.get());
    }
    Rng rng = SeedTree(seed).stream("workload");
    for (ObjectId o = 0; o < 6; ++o) dist.publish(o, rng.below(n));
    sim.run();
    std::vector<Weight> costs;
    for (int i = 0; i < 12; ++i) {
      dist.move(static_cast<ObjectId>(i % 6), rng.below(n),
                [&costs](const MoveResult& r) { costs.push_back(r.cost); });
      sim.run();
    }
    std::vector<std::pair<NodeId, Weight>> answers;
    for (int i = 0; i < 12; ++i) {
      dist.query(rng.below(n), static_cast<ObjectId>(i % 6),
                 [&answers](const QueryResult& r) {
                   answers.emplace_back(r.proxy, r.cost);
                   EXPECT_TRUE(r.found);
                   EXPECT_FALSE(r.degraded);
                 });
      sim.run();
    }
    std::vector<NodeId> placement;
    for (ObjectId o = 0; o < 6; ++o) {
      placement.push_back(dist.physical_position(o));
    }
    EXPECT_TRUE(dist.invariant_violations().empty());
    return std::tuple(costs, answers, placement,
                      dist.stats().retransmissions);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(OverloadProto, ShedFramesAreRescuedByRetransmission) {
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 0.5;
  config.queue_capacity = 4;
  config.degrade_queries = false;  // force the full descent under load
  config.sibling_redirect = false;
  config.seed = 5;
  const FloodOutcome out = run_flood(fx, config, /*flood=*/40, /*seed=*/3);
  EXPECT_GT(out.service_stats.shed_total(), 0u);
  EXPECT_GT(out.stats.messages_shed, 0u);
  EXPECT_GT(out.stats.retransmissions, 0u);  // the rescue mechanism
  for (const QueryResult& r : out.results) {
    EXPECT_TRUE(r.found);  // shedding delayed, never lost, every query
  }
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(OverloadProto, DegradedAnswersCarryAHonestStalenessBound) {
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 0.5;
  config.queue_capacity = 8;
  config.degrade_fraction = 0.25;
  config.seed = 5;
  const FloodOutcome out = run_flood(fx, config, 40, 3);
  EXPECT_GT(out.stats.queries_degraded, 0u);
  ASSERT_TRUE(out.violations.empty()) << out.violations.front();
  int degraded = 0;
  for (const QueryResult& r : out.results) {
    EXPECT_TRUE(r.found);
    if (!r.degraded) {
      EXPECT_EQ(r.staleness_bound, 0.0);
      continue;
    }
    ++degraded;
    EXPECT_GT(r.staleness_bound, 0.0);
    // The object never moved, so the degraded answer must point within
    // its promised radius of the true position.
    const Weight away = fx.oracle->distance(r.proxy, out.true_position);
    EXPECT_LE(away, r.staleness_bound);
  }
  EXPECT_GT(degraded, 0);
}

TEST(OverloadProto, HotDescentsDivertToClusterSiblings) {
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 0.5;
  config.queue_capacity = 8;
  config.degrade_queries = false;  // leave the redirect as the only valve
  config.degrade_fraction = 0.25;
  config.seed = 5;
  const FloodOutcome out = run_flood(fx, config, 40, 3);
  EXPECT_GT(out.stats.sibling_redirects, 0u);
  for (const QueryResult& r : out.results) {
    EXPECT_TRUE(r.found);
  }
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(OverloadProto, CreditWindowParksExcessFramesUntilAcked) {
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 4.0;
  config.queue_capacity = 32;
  config.max_window = 1;  // every second concurrent frame must stall
  config.seed = 5;
  const FloodOutcome out = run_flood(fx, config, 24, 3);
  EXPECT_GT(out.stats.credit_stalls, 0u);
  for (const QueryResult& r : out.results) {
    EXPECT_TRUE(r.found);
  }
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(OverloadProto, BreakerTripsOnALossyLinkThenRecovers) {
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 8.0;
  config.queue_capacity = 64;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 8.0;
  config.seed = 5;
  faults::LinkFaults link;
  link.drop = 0.45;  // heavy loss: consecutive timeouts are routine
  faults::FaultPlan lossy_plan;
  lossy_plan.set_default_faults(link);
  const FloodOutcome out = run_flood(fx, config, 30, 3, lossy_plan);
  EXPECT_GT(out.stats.breaker_trips, 0u);
  EXPECT_GT(out.stats.breaker_probes, 0u);
  EXPECT_GT(out.stats.breaker_closes, 0u);
  for (const QueryResult& r : out.results) {
    EXPECT_TRUE(r.found);  // opens delay traffic, never strand it
  }
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(OverloadProto, OverloadedRunsAreBitIdentical) {
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 0.5;
  config.queue_capacity = 8;
  config.degrade_fraction = 0.25;
  config.seed = 5;
  faults::FaultPlan plan;
  faults::LinkFaults link;
  link.drop = 0.10;
  link.duplicate = 0.05;
  plan.set_default_faults(link);
  const FloodOutcome a = run_flood(fx, config, 30, 9, plan);
  const FloodOutcome b = run_flood(fx, config, 30, 9, plan);
  EXPECT_EQ(a.stats, b.stats);  // includes shed/breaker/degraded counts
  EXPECT_EQ(a.service_stats, b.service_stats);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].proxy, b.results[i].proxy);
    EXPECT_EQ(a.results[i].degraded, b.results[i].degraded);
    EXPECT_EQ(a.results[i].staleness_bound, b.results[i].staleness_bound);
  }
  EXPECT_TRUE(a.violations.empty());
}

// ---------------------------------------------------------------------------
// Chaos integration
// ---------------------------------------------------------------------------

TEST(OverloadChaos, BurstEventsExtendSchedulesWithoutPerturbingLegacyDraws) {
  chaos::ScheduleParams sp;
  sp.rounds = 6;
  sp.num_events = 5;
  sp.num_nodes = 64;
  const chaos::ChaosSchedule legacy = chaos::generate_schedule(17, sp);
  ASSERT_EQ(legacy.events.size(), 5u);
  for (const chaos::FaultEvent& event : legacy.events) {
    EXPECT_NE(event.kind, chaos::FaultKind::kBurst);
  }

  sp.burst_events = 3;
  const chaos::ChaosSchedule with_bursts = chaos::generate_schedule(17, sp);
  ASSERT_EQ(with_bursts.events.size(), 8u);
  // The non-burst subsequence is exactly the legacy schedule: bursts draw
  // from their own substream and are merged by a stable sort.
  std::vector<chaos::FaultEvent> non_burst;
  int bursts = 0;
  for (const chaos::FaultEvent& event : with_bursts.events) {
    if (event.kind == chaos::FaultKind::kBurst) {
      ++bursts;
      EXPECT_GE(event.duration, 1);
      EXPECT_LT(event.round, sp.rounds);
    } else {
      non_burst.push_back(event);
    }
  }
  EXPECT_EQ(bursts, 3);
  ASSERT_EQ(non_burst.size(), legacy.events.size());
  for (std::size_t i = 0; i < non_burst.size(); ++i) {
    EXPECT_EQ(non_burst[i].kind, legacy.events[i].kind);
    EXPECT_EQ(non_burst[i].round, legacy.events[i].round);
    EXPECT_EQ(non_burst[i].victim, legacy.events[i].victim);
  }
}

TEST(OverloadChaos, OverloadedChaosRunsStayGreenAndAreDeterministic) {
  chaos::RunnerParams params;
  params.rounds = 4;
  params.overload = true;
  params.overload_config.service_rate = 0.5;
  params.overload_config.queue_capacity = 8;
  params.overload_config.degrade_fraction = 0.25;
  params.burst_events = 2;
  params.burst_multiplier = 6.0;
  chaos::ChaosRunner runner(params);

  chaos::ScheduleParams sp;
  sp.rounds = params.rounds;
  sp.num_nodes = runner.net().num_nodes();
  sp.burst_events = params.burst_events;
  const chaos::ChaosSchedule schedule = chaos::generate_schedule(1, sp);

  const chaos::RunReport a = runner.run(schedule);
  EXPECT_TRUE(a.ok()) << a.violations.front();
  EXPECT_GT(a.service_stats.arrivals, 0u);
  EXPECT_EQ(a.service_stats.arrivals,
            a.service_stats.serviced + a.service_stats.shed_total());

  const chaos::RunReport b = runner.run(schedule);
  EXPECT_EQ(a.service_stats, b.service_stats);
  EXPECT_EQ(a.proto_stats, b.proto_stats);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
}

}  // namespace
}  // namespace mot
