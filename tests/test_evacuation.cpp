// Section 7 fault tolerance: graceful node departure with chain repair.
#include <gtest/gtest.h>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"

namespace mot {
namespace {

struct Fixture {
  Fixture() : graph(make_grid(8, 8)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params params;
    params.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, params);
  }

  MotOptions options() const {
    MotOptions o;
    o.use_parent_sets = false;
    return o;
  }

  // An internal node on object 0's chain that is not its proxy and not
  // the root sensor.
  NodeId pick_internal_victim(const MotTracker& tracker) const {
    const NodeId proxy = tracker.proxy_of(0);
    const NodeId root = hierarchy->root();
    for (int level = 1; level < hierarchy->height(); ++level) {
      for (const NodeId member : hierarchy->members(level)) {
        if (member != proxy && member != root &&
            tracker.chain().node_has_dl({level, member}, 0)) {
          return member;
        }
      }
    }
    return kInvalidNode;
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
};

TEST(Evacuation, ChainRepairedAndQueriesStillWork) {
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  tracker.publish(0, 9);
  tracker.move(0, 10);
  tracker.move(0, 18);

  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  const std::size_t evacuated = tracker.chain().evacuate_node(victim);
  EXPECT_GE(evacuated, 1u);
  tracker.chain().validate(0);

  for (const NodeId from : {0u, 63u, 32u}) {
    const QueryResult result = tracker.query(from, 0);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.proxy, 18u);
  }
}

TEST(Evacuation, SurvivorsKeepMoving) {
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  tracker.publish(0, 9);
  tracker.move(0, 10);
  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  tracker.chain().evacuate_node(victim);

  // The structure still supports maintenance after the departure (the
  // dead node's roles simply hold nothing when climbed through).
  Rng rng(3);
  NodeId at = 10;
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    tracker.move(0, at);
    tracker.chain().validate(0);
  }
  EXPECT_EQ(tracker.query(0, 0).proxy, at);
}

TEST(Evacuation, MultipleObjectsAllRepaired) {
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  for (ObjectId o = 0; o < 12; ++o) {
    tracker.publish(o, static_cast<NodeId>(o * 5 + 1));
  }
  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  tracker.chain().evacuate_node(victim);
  tracker.chain().validate_all();
  for (ObjectId o = 0; o < 12; ++o) {
    EXPECT_EQ(tracker.query(40, o).proxy, tracker.proxy_of(o));
  }
}

TEST(Evacuation, IdempotentOnEmptyNode) {
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  tracker.publish(0, 9);
  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  const std::size_t first = tracker.chain().evacuate_node(victim);
  EXPECT_GE(first, 1u);
  EXPECT_EQ(tracker.chain().evacuate_node(victim), 0u);
  tracker.chain().validate(0);
}

TEST(Evacuation, SpecialListsStayConsistent) {
  const Fixture fx;
  MotOptions options = fx.options();
  options.use_special_parents = true;
  options.special_parent_offset = 1;
  MotTracker tracker(*fx.hierarchy, options);
  tracker.publish(0, 9);
  tracker.move(0, 10);
  tracker.move(0, 2);
  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  tracker.chain().evacuate_node(victim);
  // validate() cross-checks DL.sp <-> SDL records; dangling pointers
  // after the departure would trip it.
  tracker.chain().validate(0);
}

TEST(Evacuation, ChargesRepairMessages) {
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  tracker.publish(0, 9);
  tracker.move(0, 50);
  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  const Weight before = tracker.meter().total_distance();
  tracker.chain().evacuate_node(victim);
  EXPECT_GT(tracker.meter().total_distance(), before);
}

TEST(Crash, RepairsLikeEvacuationButSurvivorsPay) {
  // crash_node leaves the same structure as evacuate_node — only the
  // charging differs (the dead node sends nothing, so its SDL
  // deregistration hops are free while parents still pay splices).
  const Fixture fx;
  MotOptions options = fx.options();
  options.use_special_parents = true;
  options.special_parent_offset = 1;
  MotTracker evacuated(*fx.hierarchy, options);
  MotTracker crashed(*fx.hierarchy, options);
  for (MotTracker* tracker : {&evacuated, &crashed}) {
    tracker->publish(0, 9);
    tracker->move(0, 10);
    tracker->move(0, 2);
  }
  const NodeId victim = fx.pick_internal_victim(crashed);
  ASSERT_NE(victim, kInvalidNode);

  const Weight evac_before = evacuated.meter().total_distance();
  const std::size_t graceful = evacuated.chain().evacuate_node(victim);
  const Weight evac_cost =
      evacuated.meter().total_distance() - evac_before;
  const Weight crash_before = crashed.meter().total_distance();
  const std::size_t repaired = crashed.chain().crash_node(victim);
  const Weight crash_cost = crashed.meter().total_distance() - crash_before;

  EXPECT_EQ(repaired, graceful);
  EXPECT_LE(crash_cost, evac_cost);
  crashed.chain().validate(0);
  EXPECT_EQ(crashed.chain().load_per_node(), evacuated.chain().load_per_node());
  for (const NodeId from : {0u, 63u, 32u}) {
    EXPECT_EQ(crashed.query(from, 0).proxy, 2u);
  }
}

TEST(Crash, SurvivorsKeepMovingAfterCrash) {
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  for (ObjectId o = 0; o < 8; ++o) {
    tracker.publish(o, static_cast<NodeId>(o * 7 + 1));
  }
  const NodeId victim = fx.pick_internal_victim(tracker);
  ASSERT_NE(victim, kInvalidNode);
  EXPECT_GE(tracker.chain().crash_node(victim), 1u);
  tracker.chain().validate_all();

  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const ObjectId o = rng.below(8);
    tracker.move(o, static_cast<NodeId>(rng.below(64)));
    tracker.chain().validate(o);
  }
  for (ObjectId o = 0; o < 8; ++o) {
    EXPECT_EQ(tracker.query(40, o).proxy, tracker.proxy_of(o));
  }
}

using EvacuationDeathTest = ::testing::Test;

TEST(EvacuationDeathTest, RefusesProxyNode) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  tracker.publish(0, 9);
  EXPECT_DEATH(tracker.chain().evacuate_node(9), "Precondition");
}

TEST(EvacuationDeathTest, RefusesRootSensor) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Fixture fx;
  MotTracker tracker(*fx.hierarchy, fx.options());
  tracker.publish(0, 9);
  EXPECT_DEATH(tracker.chain().evacuate_node(fx.hierarchy->root()),
               "Precondition");
}

}  // namespace
}  // namespace mot
