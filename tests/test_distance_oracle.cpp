#include "graph/distance_oracle.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/shortest_path.hpp"

namespace mot {
namespace {

TEST(GridDistanceOracle, MatchesBfs) {
  const Graph g = make_grid(6, 9);
  const GridDistanceOracle oracle(6, 9);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    const ShortestPathTree tree = bfs_unit(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(oracle.distance(u, v), tree.distance[v]);
    }
  }
}

TEST(CachedDistanceOracle, ExactAndCaching) {
  Rng rng(13);
  const Graph g = make_connected_random(40, 4.0, 5.0, rng);
  const CachedDistanceOracle oracle(g);
  EXPECT_EQ(oracle.cached_sources(), 0u);
  const ShortestPathTree tree = dijkstra(g, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(oracle.distance(3, v), tree.distance[v]);
  }
  EXPECT_GE(oracle.cached_sources(), 1u);
  // Symmetric query reuses a cached endpoint rather than a new SSSP.
  const std::size_t before = oracle.cached_sources();
  EXPECT_DOUBLE_EQ(oracle.distance(7, 3), tree.distance[7]);
  EXPECT_EQ(oracle.cached_sources(), before);
}

TEST(CachedDistanceOracle, SelfDistanceZero) {
  const Graph g = make_grid(3, 3);
  const CachedDistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.distance(4, 4), 0.0);
}

TEST(DetectGrid, RecognizesCanonicalGrids) {
  const auto shape = detect_grid(make_grid(4, 7));
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->rows, 4u);
  EXPECT_EQ(shape->cols, 7u);
}

TEST(DetectGrid, RejectsNonGrids) {
  EXPECT_FALSE(detect_grid(make_ring(12)).has_value());
  EXPECT_FALSE(detect_grid(make_torus(4, 4)).has_value());
  EXPECT_FALSE(detect_grid(make_grid8(3, 3)).has_value());
  EXPECT_FALSE(detect_grid(make_complete(4)).has_value());
}

TEST(DetectGrid, SquareAmbiguityStillExact) {
  // 1xN and Nx1 grids have the same edge set; either shape is acceptable
  // as long as distances are right.
  const Graph g = make_grid(1, 6);
  const auto oracle = make_distance_oracle(g);
  const ShortestPathTree tree = bfs_unit(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(oracle->distance(0, v), tree.distance[v]);
  }
}

TEST(MakeDistanceOracle, PicksGridFastPath) {
  const Graph grid = make_grid(5, 5);
  const auto oracle = make_distance_oracle(grid);
  EXPECT_NE(dynamic_cast<GridDistanceOracle*>(oracle.get()), nullptr);

  const Graph ring = make_ring(10);
  const auto fallback = make_distance_oracle(ring);
  EXPECT_NE(dynamic_cast<CachedDistanceOracle*>(fallback.get()), nullptr);
}

TEST(MakeDistanceOracle, AgreesAcrossBackends) {
  const Graph g = make_grid(7, 3);
  const auto fast = make_distance_oracle(g);
  const CachedDistanceOracle slow(g);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<NodeId>(rng.below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
    EXPECT_DOUBLE_EQ(fast->distance(u, v), slow.distance(u, v));
  }
}

TEST(DoublingDimension, GridIsLow) {
  Rng rng(21);
  const double dim = estimate_doubling_dimension(make_grid(12, 12), rng, 8);
  EXPECT_LE(dim, 4.0);  // 2D grids have doubling dimension ~2
}

TEST(DoublingDimension, StarIsHigh) {
  Rng rng(23);
  const double dim = estimate_doubling_dimension(make_star(128), rng, 8);
  // A star's center ball needs ~n half-radius balls to cover.
  EXPECT_GE(dim, 5.0);
}

}  // namespace
}  // namespace mot
