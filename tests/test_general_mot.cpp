// MOT over the general-network hierarchy (Section 6): the same tracker
// engine, driven by sparse-cover visit groups, on topologies that are not
// constant-doubling.
#include <gtest/gtest.h>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/general_hierarchy.hpp"
#include "workload/mobility.hpp"

namespace mot {
namespace {

struct Fixture {
  explicit Fixture(Graph g) : graph(std::move(g)) {
    oracle = make_distance_oracle(graph);
    hierarchy = GeneralHierarchy::build(graph, *oracle, {});
  }
  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<GeneralHierarchy> hierarchy;
};

MotOptions general_options() {
  MotOptions options;
  options.use_parent_sets = true;  // cluster membership IS the group
  options.use_special_parents = true;
  options.special_parent_offset = 2;
  return options;
}

TEST(GeneralMot, TracksOnGrid) {
  const Fixture fx(make_grid(8, 8));
  MotTracker tracker(*fx.hierarchy, general_options());
  tracker.publish(0, 0);
  Rng rng(3);
  NodeId at = 0;
  for (int i = 0; i < 80; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    tracker.move(0, at);
    tracker.chain().validate(0);
  }
  EXPECT_EQ(tracker.proxy_of(0), at);
  EXPECT_EQ(tracker.query(63, 0).proxy, at);
}

TEST(GeneralMot, TracksOnStar) {
  const Fixture fx(make_star(40));
  MotTracker tracker(*fx.hierarchy, general_options());
  tracker.publish(0, 5);
  tracker.move(0, 17);
  tracker.move(0, 0);
  tracker.move(0, 31);
  tracker.chain().validate(0);
  EXPECT_EQ(tracker.query(20, 0).proxy, 31u);
}

TEST(GeneralMot, TracksOnLollipop) {
  const Fixture fx(make_lollipop(8, 24));
  MotTracker tracker(*fx.hierarchy, general_options());
  tracker.publish(0, 0);
  // Walk out to the tail tip and back.
  for (NodeId to = 8; to < 32; ++to) tracker.move(0, to);
  tracker.chain().validate(0);
  EXPECT_EQ(tracker.proxy_of(0), 31u);
  EXPECT_EQ(tracker.query(3, 0).proxy, 31u);
  for (NodeId to = 31; to-- > 8;) tracker.move(0, to);
  tracker.chain().validate(0);
}

TEST(GeneralMot, QueryRatioPolylogOnGrid) {
  const Fixture fx(make_grid(10, 10));
  MotTracker tracker(*fx.hierarchy, general_options());
  TraceParams tp;
  tp.num_objects = 10;
  tp.moves_per_object = 40;
  Rng rng(5);
  const MovementTrace trace = generate_trace(fx.graph, tp, rng);
  for (ObjectId o = 0; o < 10; ++o) {
    tracker.publish(o, trace.initial_proxy[o]);
  }
  for (const MoveOp& op : trace.moves) tracker.move(op.object, op.to);

  Weight cost = 0.0;
  Weight optimal = 0.0;
  Rng qrng(7);
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<NodeId>(qrng.below(100));
    const auto object = static_cast<ObjectId>(qrng.below(10));
    const NodeId proxy = tracker.proxy_of(object);
    if (from == proxy) continue;
    cost += tracker.query(from, object).cost;
    optimal += fx.oracle->distance(from, proxy);
  }
  // Theorem 6.4 allows O(log^4 n); empirically the ratio is far smaller,
  // but it must certainly not approach O(n).
  EXPECT_LT(cost / optimal, 30.0);
}

TEST(GeneralMot, WorksWithLoadBalancing) {
  const Fixture fx(make_grid(7, 7));
  MotOptions options = general_options();
  options.load_balance = true;
  MotTracker tracker(*fx.hierarchy, options);
  for (ObjectId o = 0; o < 30; ++o) {
    tracker.publish(o, static_cast<NodeId>((o * 11) % 49));
  }
  tracker.chain().validate_all();
  std::size_t max_load = 0;
  for (const auto l : tracker.load_per_node()) max_load = std::max(max_load, l);
  // The root leader would otherwise hold >= 30 entries.
  EXPECT_LT(max_load, 30u);
}

TEST(GeneralMot, WeightedRandomGraph) {
  Rng gen(11);
  const Fixture fx(make_connected_random(60, 4.0, 6.0, gen));
  MotTracker tracker(*fx.hierarchy, general_options());
  tracker.publish(0, 0);
  Rng rng(13);
  NodeId at = 0;
  for (int i = 0; i < 50; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    tracker.move(0, at);
  }
  tracker.chain().validate(0);
  EXPECT_EQ(tracker.query(59, 0).proxy, at);
}

}  // namespace
}  // namespace mot
