#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"

namespace mot {
namespace {

struct Fixture {
  Fixture() : graph(make_grid(6, 6)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params params;
    params.seed = 5;
    hierarchy = DoublingHierarchy::build(graph, *oracle, params);
  }
  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
};

TEST(DynamicClusterSet, BuildsOneClusterPerInternalNode) {
  const Fixture fx;
  const DynamicClusterSet clusters(*fx.hierarchy, {});
  std::size_t expected = 0;
  for (int level = 1; level <= fx.hierarchy->height(); ++level) {
    expected += fx.hierarchy->members(level).size();
  }
  EXPECT_EQ(clusters.num_clusters(), expected);
}

TEST(DynamicClusterSet, LeaveAndRejoinRoundTrips) {
  const Fixture fx;
  DynamicClusterSet clusters(*fx.hierarchy, {});
  const NodeId victim = 14;
  const OverlayNode center{1, fx.hierarchy->members(1)[0]};

  const AdaptabilityReport leave = clusters.node_leaves(victim);
  EXPECT_GT(leave.clusters_affected, 0u);
  EXPECT_GT(leave.nodes_updated, 0u);

  const AdaptabilityReport join = clusters.node_joins(victim);
  EXPECT_EQ(join.clusters_affected, leave.clusters_affected);
  (void)center;
}

TEST(DynamicClusterSet, LeaderHandoffWhenLeaderLeaves) {
  const Fixture fx;
  DynamicClusterSet clusters(*fx.hierarchy, {});
  // A level-1 member leads its own cluster; removing it must hand off.
  const NodeId leader = fx.hierarchy->members(1)[0];
  const AdaptabilityReport report = clusters.node_leaves(leader);
  EXPECT_GE(report.leader_handoffs, 1u);
  EXPECT_GT(report.handoff_broadcasts, 0u);
}

TEST(DynamicClusterSet, NonLeaderLeaveHasNoHandoff) {
  const Fixture fx;
  DynamicClusterSet clusters(*fx.hierarchy, {});
  // Find a node that is a bottom-level sensor but not a member of any
  // higher level (so it never leads).
  NodeId follower = kInvalidNode;
  for (NodeId v = 0; v < fx.graph.num_nodes(); ++v) {
    bool leads = false;
    for (int level = 1; level <= fx.hierarchy->height(); ++level) {
      if (fx.hierarchy->is_member(level, v)) leads = true;
    }
    if (!leads) {
      follower = v;
      break;
    }
  }
  ASSERT_NE(follower, kInvalidNode);
  const AdaptabilityReport report = clusters.node_leaves(follower);
  EXPECT_EQ(report.leader_handoffs, 0u);
}

TEST(DynamicClusterSet, AmortizedUpdatesConstant) {
  // Section 7: a long churn sequence has O(1) amortized de Bruijn
  // relabeling updates per event per cluster; summed over the O(log D)
  // clusters a node belongs to, the per-event mean stays small.
  const Fixture fx;
  DynamicClusterSet clusters(*fx.hierarchy, {});
  Rng rng(3);
  std::vector<NodeId> out;  // nodes currently removed
  for (int event = 0; event < 400; ++event) {
    if (!out.empty() && rng.chance(0.5)) {
      const std::size_t pick = rng.below(out.size());
      clusters.node_joins(out[pick]);
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto victim = static_cast<NodeId>(rng.below(36));
      if (std::find(out.begin(), out.end(), victim) != out.end()) continue;
      clusters.node_leaves(victim);
      out.push_back(victim);
    }
  }
  // Mean updates per event across all clusters containing the node:
  // O(1) per cluster x O(levels) clusters; 60 is a loose ceiling that a
  // non-amortized scheme (full rebuilds) would blow through.
  EXPECT_LT(clusters.amortized_updates(), 60.0);
}

TEST(DynamicClusterSet, ClusterMembershipTracksChurn) {
  const Fixture fx;
  DynamicClusterSet clusters(*fx.hierarchy, {});
  const int level = 1;
  const NodeId center = fx.hierarchy->members(level)[0];
  const auto members = fx.hierarchy->cluster(level, center);
  ASSERT_GT(members.size(), 1u);
  // Pick a member that is not the center.
  NodeId member = members[0] == center ? members[1] : members[0];
  EXPECT_TRUE(clusters.cluster_contains({level, center}, member));
  clusters.node_leaves(member);
  EXPECT_FALSE(clusters.cluster_contains({level, center}, member));
  clusters.node_joins(member);
  EXPECT_TRUE(clusters.cluster_contains({level, center}, member));
}

TEST(DynamicClusterSet, CrashNotifiesSurvivorsThenRelabelsLikeALeave) {
  const Fixture fx;
  DynamicClusterSet control(*fx.hierarchy, {});
  DynamicClusterSet clusters(*fx.hierarchy, {});
  const int level = 1;
  const NodeId center = fx.hierarchy->members(level)[0];
  const auto members = fx.hierarchy->cluster(level, center);
  ASSERT_GT(members.size(), 1u);
  const NodeId victim = members[0] == center ? members[1] : members[0];

  const AdaptabilityReport expected = control.node_leaves(victim);
  const AdaptabilityReport report = clusters.node_crashes(victim);
  // Structurally identical to an announced departure...
  EXPECT_EQ(report.clusters_affected, expected.clusters_affected);
  EXPECT_EQ(report.nodes_updated, expected.nodes_updated);
  EXPECT_FALSE(clusters.cluster_contains({level, center}, victim));
  // ...plus at least one survivor notified per affected cluster.
  EXPECT_GE(report.failure_notifications, report.clusters_affected);
  EXPECT_EQ(expected.failure_notifications, 0u);
  EXPECT_EQ(clusters.crash_events(), 1u);
}

TEST(DynamicClusterSet, RepeatLeaveIsIdempotent) {
  const Fixture fx;
  DynamicClusterSet clusters(*fx.hierarchy, {});
  clusters.node_leaves(10);
  const AdaptabilityReport second = clusters.node_leaves(10);
  EXPECT_EQ(second.clusters_affected, 0u);
  EXPECT_EQ(second.nodes_updated, 0u);
}

}  // namespace
}  // namespace mot
