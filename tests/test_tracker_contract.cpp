// The tracker contract: behaviours EVERY tracking algorithm in the
// library must satisfy, run as a parameterized suite over the full
// algorithm x topology matrix. This is the safety net that lets the
// experiment harness treat all algorithms uniformly.
#include <gtest/gtest.h>

#include <tuple>

#include "expt/experiment.hpp"
#include "graph/generators.hpp"
#include "workload/mobility.hpp"

namespace mot {
namespace {

enum class Topology { kGrid, kRing, kTorus, kGeometric };

const char* topology_name(Topology topology) {
  switch (topology) {
    case Topology::kGrid:
      return "Grid";
    case Topology::kRing:
      return "Ring";
    case Topology::kTorus:
      return "Torus";
    case Topology::kGeometric:
      return "Geometric";
  }
  return "?";
}

Graph make_topology(Topology topology) {
  switch (topology) {
    case Topology::kGrid:
      return make_grid(7, 7);
    case Topology::kRing:
      return make_ring(48);
    case Topology::kTorus:
      return make_torus(7, 7);
    case Topology::kGeometric: {
      Rng rng(1234);
      return make_random_geometric(50, 10.0, 2.6, rng, 64, 0.5);
    }
  }
  return Graph{};
}

using Param = std::tuple<Algo, Topology>;

class TrackerContractTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [algo, topology] = GetParam();
    (void)algo;  // every algorithm must pass on every embedded topology
    network_ = build_network(make_topology(topology), 42);
    TraceParams tp;
    tp.num_objects = 8;
    tp.moves_per_object = 30;
    Rng rng(7);
    trace_ = generate_trace(network_.graph(), tp, rng);
    rates_ = trace_.estimate_rates();
    instance_ = make_algo(algo, network_, rates_, 42);
  }

  Network network_;
  MovementTrace trace_;
  EdgeRates rates_;
  AlgoInstance instance_;
};

TEST_P(TrackerContractTest, ProxiesTrackEveryMove) {
  publish_all(*instance_.tracker, trace_);
  std::vector<NodeId> at = trace_.initial_proxy;
  for (const MoveOp& op : trace_.moves) {
    instance_.tracker->move(op.object, op.to);
    at[op.object] = op.to;
    ASSERT_EQ(instance_.tracker->proxy_of(op.object), op.to);
  }
  for (ObjectId o = 0; o < trace_.num_objects(); ++o) {
    EXPECT_EQ(instance_.tracker->proxy_of(o), at[o]);
  }
}

TEST_P(TrackerContractTest, EveryQueryFindsTheRightProxy) {
  publish_all(*instance_.tracker, trace_);
  run_moves(*instance_.tracker, *network_.oracle, trace_.moves);
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const auto from =
        static_cast<NodeId>(rng.below(network_.num_nodes()));
    const auto object =
        static_cast<ObjectId>(rng.below(trace_.num_objects()));
    const QueryResult result = instance_.tracker->query(from, object);
    ASSERT_TRUE(result.found);
    ASSERT_EQ(result.proxy, instance_.tracker->proxy_of(object));
  }
}

TEST_P(TrackerContractTest, MoveCostNeverBelowOptimal) {
  publish_all(*instance_.tracker, trace_);
  for (const MoveOp& op : trace_.moves) {
    const Weight optimal = network_.oracle->distance(op.from, op.to);
    const MoveResult result = instance_.tracker->move(op.object, op.to);
    ASSERT_GE(result.cost, optimal - 1e-9)
        << op.from << " -> " << op.to;
  }
}

TEST_P(TrackerContractTest, ChainInvariantHoldsThroughout) {
  publish_all(*instance_.tracker, trace_);
  std::size_t step = 0;
  for (const MoveOp& op : trace_.moves) {
    instance_.tracker->move(op.object, op.to);
    if (++step % 17 == 0) instance_.tracker->validate_all();
  }
  instance_.tracker->validate_all();
}

TEST_P(TrackerContractTest, LoadAccountsForEveryObject) {
  publish_all(*instance_.tracker, trace_);
  run_moves(*instance_.tracker, *network_.oracle, trace_.moves);
  const auto load = instance_.tracker->load_per_node();
  ASSERT_EQ(load.size(), network_.num_nodes());
  std::size_t total = 0;
  for (const auto l : load) total += l;
  // Every object occupies at least its proxy sentinel and the root entry.
  EXPECT_GE(total, 2 * trace_.num_objects());
}

TEST_P(TrackerContractTest, QueriesDoNotMutate) {
  publish_all(*instance_.tracker, trace_);
  run_moves(*instance_.tracker, *network_.oracle, trace_.moves);
  const auto before = instance_.tracker->load_per_node();
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    instance_.tracker->query(
        static_cast<NodeId>(rng.below(network_.num_nodes())),
        static_cast<ObjectId>(rng.below(trace_.num_objects())));
  }
  EXPECT_EQ(instance_.tracker->load_per_node(), before);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [algo, topology] = info.param;
  std::string name = algo_name(algo);
  for (char& c : name) {
    if (c == '-' || c == '+') c = '_';
  }
  return name + "_" + topology_name(topology);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllTopologies, TrackerContractTest,
    ::testing::Combine(
        ::testing::Values(Algo::kMot, Algo::kMotLoadBalanced, Algo::kStun,
                          Algo::kDat, Algo::kZdat, Algo::kZdatShortcuts),
        ::testing::Values(Topology::kGrid, Topology::kRing,
                          Topology::kTorus, Topology::kGeometric)),
    param_name);

}  // namespace
}  // namespace mot
