// The adaptive control plane: AIMD credit-window caps, the RED/admission
// gradient tuner with hysteresis, load-aware replica placement, the
// misconfiguration clamp on RED thresholds, labeled gauge export, and
// the integration contracts — bit-identical adaptive runs across reruns
// and worker counts, breaker recovery under a shrinking window, a
// disabled controller leaving the run byte-identical, and correlated
// burst+crash+partition chaos staying green and shrinkable.
#include "adapt/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "chaos/schedule.hpp"
#include "core/mot.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "obs/metrics_registry.hpp"
#include "overload/overload.hpp"
#include "par/thread_pool.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/service_model.hpp"

namespace mot {
namespace {

using adapt::AdaptiveConfig;
using adapt::AdaptiveController;
using adapt::LoadGauge;
using adapt::NodeSignal;
using adapt::PlacementPlan;
using adapt::TuneAction;
using overload::OverloadConfig;
using overload::Priority;
using proto::DistributedMot;

// ---------------------------------------------------------------------------
// AIMD credit-window caps
// ---------------------------------------------------------------------------

TEST(AdaptiveAimd, FirstLossOnAFreshLinkHalvesFromMaxWindow) {
  AdaptiveController ctl(AdaptiveConfig{});
  EXPECT_EQ(ctl.window_cap(7, 8), 8u);  // untracked link sits at the max
  // The very first loss must bite: the fresh link's cap starts at the
  // caller's max_window, not at some unbounded sentinel.
  EXPECT_TRUE(ctl.on_link_loss(7, 8));
  EXPECT_EQ(ctl.window_cap(7, 8), 4u);
  EXPECT_EQ(ctl.stats().window_shrinks, 1u);
}

TEST(AdaptiveAimd, DecreasesMultiplicativelyToTheFloorThenRecovers) {
  AdaptiveConfig config;
  config.epoch_acks = 4;
  AdaptiveController ctl(config);
  // 8 -> 4 -> 2 -> 1, then the floor holds.
  EXPECT_TRUE(ctl.on_link_loss(3, 8));
  EXPECT_TRUE(ctl.on_link_loss(3, 8));
  EXPECT_TRUE(ctl.on_link_loss(3, 8));
  EXPECT_EQ(ctl.window_cap(3, 8), 1u);
  EXPECT_FALSE(ctl.on_link_loss(3, 8));
  EXPECT_EQ(ctl.window_cap(3, 8), 1u);
  // Additive increase: one notch per full epoch of clean acks.
  for (std::size_t raise = 1; raise <= 3; ++raise) {
    for (std::size_t ack = 1; ack < config.epoch_acks; ++ack) {
      EXPECT_FALSE(ctl.on_clean_ack(3, 8));
    }
    EXPECT_TRUE(ctl.on_clean_ack(3, 8));
    EXPECT_EQ(ctl.window_cap(3, 8), 1u + raise);
  }
  EXPECT_EQ(ctl.stats().window_raises, 3u);
}

TEST(AdaptiveAimd, LossResetsTheCleanAckEpoch) {
  AdaptiveConfig config;
  config.epoch_acks = 4;
  AdaptiveController ctl(config);
  ASSERT_TRUE(ctl.on_link_loss(0, 8));  // cap 4: leave room to raise
  for (int ack = 0; ack < 3; ++ack) EXPECT_FALSE(ctl.on_clean_ack(0, 8));
  ASSERT_TRUE(ctl.on_link_loss(0, 8));  // cap 2, epoch progress wiped
  for (int ack = 0; ack < 3; ++ack) EXPECT_FALSE(ctl.on_clean_ack(0, 8));
  EXPECT_TRUE(ctl.on_clean_ack(0, 8));  // only a full fresh epoch raises
  EXPECT_EQ(ctl.window_cap(0, 8), 3u);
}

TEST(AdaptiveAimd, CapNeverExceedsAShrunkenMaxWindow) {
  AdaptiveController ctl(AdaptiveConfig{});
  ASSERT_TRUE(ctl.on_link_loss(1, 16));  // cap 8
  // The host's max_window governs even when the stored cap is larger.
  EXPECT_EQ(ctl.window_cap(1, 4), 4u);
  EXPECT_TRUE(ctl.on_link_loss(1, 4));  // clamps to 4 first, then halves
  EXPECT_EQ(ctl.window_cap(1, 16), 2u);
}

TEST(AdaptiveAimd, DisabledAimdIsInert) {
  AdaptiveConfig config;
  config.aimd = false;
  AdaptiveController ctl(config);
  EXPECT_FALSE(ctl.on_link_loss(0, 8));
  EXPECT_FALSE(ctl.on_clean_ack(0, 8));
  EXPECT_EQ(ctl.window_cap(0, 8), 8u);
  EXPECT_EQ(ctl.stats().window_shrinks, 0u);
}

// ---------------------------------------------------------------------------
// Gradient tuner with hysteresis
// ---------------------------------------------------------------------------

OverloadConfig tuner_base() {
  OverloadConfig base;
  base.queue_capacity = 12;
  base.service_rate = 1.0;
  base.degrade_fraction = 0.25;  // high_watermark 3
  base.red_fraction = 0.15;
  return base;
}

NodeSignal degraded_signal(std::uint32_t node) {
  NodeSignal sig;
  sig.node = node;
  sig.delay_samples = 10;
  sig.mean_delay = 1.0;
  sig.degrades = 4;
  return sig;
}

NodeSignal open_eligible_signal(std::uint32_t node) {
  NodeSignal sig;
  sig.node = node;
  sig.delay_samples = 10;
  sig.mean_delay = 0.5;  // well under the target of 3.0
  sig.sheds = 6;
  sig.depth_ewma = 1.0;  // headroom below the watermark
  return sig;
}

TEST(AdaptiveTuner, TargetDelayTracksDegradeOnsetAndQueryBudget) {
  AdaptiveController ctl(AdaptiveConfig{});
  OverloadConfig base = tuner_base();
  // Default: the delay at which answers start degrading.
  EXPECT_DOUBLE_EQ(ctl.target_delay_for(base), 3.0);
  // A tighter query-class deadline budget caps it.
  base.delay_budget[static_cast<std::size_t>(Priority::kQuery)] = 2.0;
  EXPECT_DOUBLE_EQ(ctl.target_delay_for(base), 2.0);
  // An explicit configured target wins outright.
  AdaptiveConfig config;
  config.target_delay = 0.75;
  AdaptiveController explicit_ctl(config);
  EXPECT_DOUBLE_EQ(explicit_ctl.target_delay_for(base), 0.75);
}

TEST(AdaptiveTuner, DegradedAnswersTightenWithTheBoostedStep) {
  AdaptiveConfig config;
  AdaptiveController ctl(config);
  const OverloadConfig base = tuner_base();
  const std::vector<TuneAction> actions =
      ctl.tune({degraded_signal(5)}, base);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].node, 5u);
  const double expect_step = config.step * config.tighten_boost;
  const double base_admit =
      base.admit_fraction[static_cast<std::size_t>(Priority::kQuery)];
  EXPECT_DOUBLE_EQ(actions[0].admit_fraction, base_admit - expect_step);
  EXPECT_DOUBLE_EQ(actions[0].red_fraction,
                   base.red_fraction - expect_step);
  EXPECT_EQ(ctl.stats().tuner_tightens, 1u);
}

TEST(AdaptiveTuner, TightenedFractionsNeverEscapeTheFloorClamps) {
  AdaptiveConfig config;
  AdaptiveController ctl(config);
  const OverloadConfig base = tuner_base();
  for (int epoch = 0; epoch < 50; ++epoch) {
    ctl.tune({degraded_signal(5)}, base);
  }
  EXPECT_TRUE(ctl.violations(base).empty());
  const std::vector<TuneAction> last = ctl.tune({degraded_signal(5)}, base);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_DOUBLE_EQ(last[0].admit_fraction, config.admit_min);
  EXPECT_DOUBLE_EQ(last[0].red_fraction, config.red_min);
}

TEST(AdaptiveTuner, OpensOnShedsOnlyWhileNothingDegrades) {
  AdaptiveConfig config;
  AdaptiveController ctl(config);
  const OverloadConfig base = tuner_base();
  const double base_admit =
      base.admit_fraction[static_cast<std::size_t>(Priority::kQuery)];
  // Clean system: the shedding node's thresholds open one step.
  std::vector<TuneAction> actions =
      ctl.tune({open_eligible_signal(2)}, base);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_DOUBLE_EQ(actions[0].admit_fraction, base_admit + config.step);
  EXPECT_EQ(ctl.stats().tuner_raises, 1u);
  // The goodput gate is global: a degraded answer on ANY node pauses
  // opening everywhere — the load an opened node admits degrades
  // downstream, not at the node that opened.
  actions = ctl.tune({open_eligible_signal(2), degraded_signal(9)}, base);
  ASSERT_EQ(actions.size(), 1u);  // only node 9's tighten
  EXPECT_EQ(actions[0].node, 9u);
  EXPECT_EQ(ctl.stats().tuner_raises, 1u);
}

TEST(AdaptiveTuner, OpeningStopsAtTheClassMonotonicityCeiling) {
  AdaptiveConfig config;
  AdaptiveController ctl(config);
  const OverloadConfig base = tuner_base();
  const double ceiling = ctl.admit_ceiling_for(base);
  EXPECT_DOUBLE_EQ(
      ceiling,
      base.admit_fraction[static_cast<std::size_t>(Priority::kMaintenance)]);
  for (int epoch = 0; epoch < 50; ++epoch) {
    ctl.tune({open_eligible_signal(2)}, base);
  }
  const std::vector<TuneAction> last =
      ctl.tune({open_eligible_signal(2)}, base);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_LE(last[0].admit_fraction, ceiling);
  EXPECT_LE(last[0].red_fraction, ceiling);
  EXPECT_TRUE(ctl.violations(base).empty());
}

TEST(AdaptiveTuner, QuietSignalsInsideTheDeadbandHoldFire) {
  AdaptiveController ctl(AdaptiveConfig{});
  const OverloadConfig base = tuner_base();
  NodeSignal sig;
  sig.node = 1;
  sig.delay_samples = 10;
  sig.mean_delay = 3.0;  // exactly on target: inside the deadband
  EXPECT_TRUE(ctl.tune({sig}, base).empty());
  EXPECT_EQ(ctl.stats().tuner_steps, 0u);
}

TEST(AdaptiveTuner, OscillationFreezesTheNodeAtTheStaticBase) {
  AdaptiveConfig config;
  AdaptiveController ctl(config);
  const OverloadConfig base = tuner_base();
  const double base_admit =
      base.admit_fraction[static_cast<std::size_t>(Priority::kQuery)];
  // Alternate tighten/open signals until the flip counter trips. The
  // freeze must snap the node back to the static operating point —
  // pinning whatever point the oscillation landed on would hold a
  // half-wrong threshold for freeze_steps epochs.
  std::vector<TuneAction> last;
  int epochs = 0;
  while (ctl.stats().tuner_freezes == 0 && epochs < 32) {
    last = ctl.tune({epochs % 2 == 0 ? degraded_signal(4)
                                     : open_eligible_signal(4)},
                    base);
    ++epochs;
  }
  ASSERT_EQ(ctl.stats().tuner_freezes, 1u);
  EXPECT_TRUE(ctl.frozen(4));
  ASSERT_EQ(last.size(), 1u);
  EXPECT_DOUBLE_EQ(last[0].admit_fraction, base_admit);
  EXPECT_DOUBLE_EQ(last[0].red_fraction, base.red_fraction);
  // While frozen, further pressure produces no actions; the freeze
  // expires after freeze_steps epochs and the node thaws.
  for (int step = 0; step < config.freeze_steps; ++step) {
    EXPECT_TRUE(ctl.tune({degraded_signal(4)}, base).empty());
  }
  EXPECT_FALSE(ctl.frozen(4));
  EXPECT_EQ(ctl.tune({degraded_signal(4)}, base).size(), 1u);
  EXPECT_TRUE(ctl.violations(base).empty());
}

TEST(AdaptiveTuner, IdleNodesDecayBackToBaseAndAreForgotten) {
  AdaptiveConfig config;
  AdaptiveController ctl(config);
  const OverloadConfig base = tuner_base();
  ASSERT_EQ(ctl.tune({degraded_signal(6)}, base).size(), 1u);
  // The hotspot moved away: idle epochs walk the node back to the
  // static point, then the controller forgets it entirely.
  NodeSignal idle;
  idle.node = 6;
  std::size_t decay_actions = 0;
  for (int epoch = 0; epoch < 16; ++epoch) {
    decay_actions += ctl.tune({idle}, base).size();
  }
  EXPECT_GT(decay_actions, 0u);
  EXPECT_GT(ctl.stats().tuner_reverts, 0u);
  // Forgotten: further idle epochs produce nothing at all.
  EXPECT_TRUE(ctl.tune({idle}, base).empty());
}

TEST(AdaptiveTuner, DisabledTunerProducesNoActions) {
  AdaptiveConfig config;
  config.tune_admission = false;
  AdaptiveController ctl(config);
  EXPECT_TRUE(ctl.tune({degraded_signal(0)}, tuner_base()).empty());
}

// ---------------------------------------------------------------------------
// Load-aware replica placement
// ---------------------------------------------------------------------------

LoadGauge gauge(std::uint32_t node, std::uint64_t diverts) {
  LoadGauge g;
  g.node = node;
  g.diverts = diverts;
  return g;
}

TEST(AdaptivePlacement, PlacesHottestOwnersFirstWithinTheBudget) {
  AdaptiveConfig config;
  config.hot_score = 4.0;
  config.max_replicas = 2;
  AdaptiveController ctl(config);
  const PlacementPlan plan = ctl.plan_placements(
      {gauge(1, 9), gauge(2, 0), gauge(3, 5), gauge(4, 30)});
  ASSERT_EQ(plan.place.size(), 2u);  // budget binds before node 3
  EXPECT_EQ(plan.place[0], 4u);      // hottest first
  EXPECT_EQ(plan.place[1], 1u);
  EXPECT_TRUE(plan.retire.empty());
  EXPECT_EQ(ctl.placed_owners(), (std::vector<std::uint32_t>{1, 4}));
}

TEST(AdaptivePlacement, RetiresAfterConsecutiveColdEpochsRoundTrip) {
  AdaptiveConfig config;
  config.hot_score = 4.0;
  config.retire_after = 2;
  AdaptiveController ctl(config);
  ASSERT_EQ(ctl.plan_placements({gauge(5, 10)}).place.size(), 1u);
  // One cold epoch is not enough; a hot epoch resets the streak.
  EXPECT_TRUE(ctl.plan_placements({gauge(5, 0)}).retire.empty());
  EXPECT_TRUE(ctl.plan_placements({gauge(5, 10)}).retire.empty());
  EXPECT_TRUE(ctl.plan_placements({gauge(5, 0)}).retire.empty());
  const PlacementPlan plan = ctl.plan_placements({gauge(5, 0)});
  ASSERT_EQ(plan.retire.size(), 1u);
  EXPECT_EQ(plan.retire[0], 5u);
  EXPECT_TRUE(ctl.placed_owners().empty());
  EXPECT_EQ(ctl.stats().replicas_placed, 1u);
  EXPECT_EQ(ctl.stats().replicas_retired, 1u);
}

TEST(AdaptivePlacement, DeadOwnersMissingFromTheGaugesAreRetired) {
  AdaptiveConfig config;
  config.hot_score = 4.0;
  AdaptiveController ctl(config);
  ASSERT_EQ(ctl.plan_placements({gauge(2, 10), gauge(3, 10)}).place.size(),
            2u);
  // Node 3 died: it no longer appears in the live-candidate gauges.
  const PlacementPlan plan = ctl.plan_placements({gauge(2, 10)});
  ASSERT_EQ(plan.retire.size(), 1u);
  EXPECT_EQ(plan.retire[0], 3u);
  EXPECT_EQ(ctl.placed_owners(), (std::vector<std::uint32_t>{2}));
}

TEST(AdaptivePlacement, FreedBudgetIsReusedForNewHotspots) {
  AdaptiveConfig config;
  config.hot_score = 4.0;
  config.max_replicas = 1;
  AdaptiveController ctl(config);
  ASSERT_EQ(ctl.plan_placements({gauge(1, 10), gauge(2, 10)}).place.size(),
            1u);
  // The budget is full, so the second hotspot waits until the first
  // owner dies — then the freed slot goes to it in the same step.
  EXPECT_TRUE(ctl.plan_placements({gauge(1, 10), gauge(2, 10)})
                  .place.empty());
  const PlacementPlan plan = ctl.plan_placements({gauge(2, 10)});
  EXPECT_EQ(plan.retire.size(), 1u);
  EXPECT_EQ(plan.place.size(), 1u);
  EXPECT_EQ(plan.place[0], 2u);
}

// ---------------------------------------------------------------------------
// RED threshold misconfiguration clamp
// ---------------------------------------------------------------------------

TEST(AdaptiveRedClamp, MisconfiguredFractionsDisableTheRampSafely) {
  OverloadConfig config;
  config.queue_capacity = 12;
  const std::size_t limit = config.admit_limit(Priority::kQuery);
  // In range: the onset lands strictly below the query limit.
  config.red_fraction = 0.25;
  EXPECT_EQ(config.red_threshold(), 3u);
  EXPECT_LT(config.red_threshold(), limit);
  // The established disable idiom and everything at/above it clamp to
  // the limit (onset == limit turns the ramp off).
  config.red_fraction = 1.0;
  EXPECT_EQ(config.red_threshold(), limit);
  config.red_fraction = 7.5;
  EXPECT_EQ(config.red_threshold(), limit);
  // Negative and NaN would be UB if the raw product were cast straight
  // to unsigned; both must disable the ramp instead of wrapping.
  config.red_fraction = -0.5;
  EXPECT_EQ(config.red_threshold(), limit);
  config.red_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(config.red_threshold(), limit);
}

TEST(AdaptiveRedClamp, DegenerateCapacitiesKeepTheThresholdBounded) {
  OverloadConfig config;
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{1}}) {
    config.queue_capacity = capacity;
    for (const double fraction : {-1.0, 0.0, 0.15, 1.0, 100.0}) {
      config.red_fraction = fraction;
      EXPECT_LE(config.red_threshold(),
                config.admit_limit(Priority::kQuery))
          << "capacity " << capacity << " fraction " << fraction;
    }
  }
}

// ---------------------------------------------------------------------------
// Labeled gauge export
// ---------------------------------------------------------------------------

TEST(AdaptiveMetrics, ExportPublishesLabeledControllerState) {
  AdaptiveConfig config;
  config.hot_score = 4.0;
  AdaptiveController ctl(config);
  ASSERT_TRUE(ctl.on_link_loss(3, 8));
  ctl.tune({degraded_signal(5)}, tuner_base());
  ctl.plan_placements({gauge(7, 10)});

  obs::MetricsRegistry registry;
  ctl.export_metrics(registry, 8);
  bool saw_window = false, saw_admit = false, saw_replicas = false;
  for (const obs::MetricSnapshot& metric : registry.snapshot()) {
    if (metric.name == "mot_adapt_credit_window") {
      saw_window = true;
      ASSERT_EQ(metric.labels.size(), 1u);
      EXPECT_EQ(metric.labels[0].first, "link");
      EXPECT_EQ(metric.labels[0].second, "3");
      EXPECT_DOUBLE_EQ(metric.gauge_value, 4.0);
    } else if (metric.name == "mot_adapt_admit_fraction") {
      saw_admit = true;
      ASSERT_EQ(metric.labels.size(), 1u);
      EXPECT_EQ(metric.labels[0].first, "node");
      EXPECT_EQ(metric.labels[0].second, "5");
    } else if (metric.name == "mot_adapt_replica_count") {
      saw_replicas = true;
      EXPECT_DOUBLE_EQ(metric.gauge_value, 1.0);
    }
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_replicas);
}

// ---------------------------------------------------------------------------
// Protocol integration
// ---------------------------------------------------------------------------

struct Fixture {
  explicit Fixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// One adaptive run: publish objects, then `epochs` rounds of a seeded
// query flood against object 0 with an adaptive_step() at each drained
// quiescence point. Mirrors test_overload's run_flood, plus the
// controller.
struct AdaptiveOutcome {
  proto::ProtocolStats stats;
  adapt::ControllerStats controller;
  std::vector<std::uint64_t> results;  // proxy per query, issue order
  std::vector<std::string> violations;
};

AdaptiveOutcome run_adaptive(const Fixture& fx, const OverloadConfig& config,
                             const AdaptiveConfig& acfg, int epochs,
                             int flood, std::uint64_t seed,
                             const faults::FaultPlan& plan = {}) {
  AdaptiveOutcome out;
  Simulator sim;
  faults::UnreliableChannel channel(plan,
                                    SeedTree(seed).seed_for("channel"));
  AdaptiveController tuner(acfg);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);
  dist.replicate_placed();
  ServiceModel service(sim, fx.graph.num_nodes(), config);
  dist.use_overload(&service);
  dist.use_adaptive(&tuner);

  Rng rng = SeedTree(seed).stream("flood");
  const std::size_t n = fx.graph.num_nodes();
  for (ObjectId o = 0; o < 4; ++o) dist.publish(o, rng.below(n));
  sim.run();

  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int i = 0; i < flood; ++i) {
      dist.query(rng.below(n), /*object=*/0,
                 [&out](const QueryResult& r) {
                   out.results.push_back(r.proxy);
                 });
    }
    sim.run();
    dist.adaptive_step();
  }
  out.stats = dist.stats();
  out.controller = tuner.stats();
  out.violations = dist.invariant_violations();
  for (std::string& line : tuner.violations(service.config())) {
    out.violations.push_back("controller: " + std::move(line));
  }
  if (!service.conserved()) {
    out.violations.push_back("service ledger unbalanced");
  }
  return out;
}

OverloadConfig proto_config() {
  OverloadConfig config;
  config.service_rate = 0.5;
  config.queue_capacity = 8;
  config.degrade_fraction = 0.25;
  config.seed = 5;
  return config;
}

TEST(AdaptiveProto, AdaptiveRunsAreBitIdenticalAcrossReruns) {
  Fixture fx;
  faults::FaultPlan plan;
  faults::LinkFaults link;
  link.drop = 0.10;
  link.duplicate = 0.05;
  plan.set_default_faults(link);
  const AdaptiveOutcome a =
      run_adaptive(fx, proto_config(), AdaptiveConfig{}, 3, 20, 9, plan);
  const AdaptiveOutcome b =
      run_adaptive(fx, proto_config(), AdaptiveConfig{}, 3, 20, 9, plan);
  EXPECT_GT(a.controller.tuner_steps + a.controller.window_shrinks +
                a.controller.replicas_placed,
            0u);  // the controller actually acted
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_TRUE(a.controller == b.controller);
  EXPECT_EQ(a.results, b.results);
  EXPECT_TRUE(a.violations.empty()) << a.violations.front();
}

TEST(AdaptiveProto, AdaptiveRunsAreIdenticalAcrossWorkerCounts) {
  // The bench sweep contract: adaptive cells are self-contained, so a
  // slot-writing pool fills identical results for any worker count.
  Fixture fx;
  constexpr std::size_t kCells = 4;
  auto run_pool = [&fx](std::size_t workers) {
    par::ThreadPool pool(workers);
    std::vector<AdaptiveOutcome> out(kCells);
    pool.for_each(kCells, [&](std::size_t i) {
      out[i] = run_adaptive(fx, proto_config(), AdaptiveConfig{}, 2, 16,
                            100 + static_cast<std::uint64_t>(i));
    });
    return out;
  };
  const std::vector<AdaptiveOutcome> serial = run_pool(1);
  const std::vector<AdaptiveOutcome> pooled = run_pool(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].stats, pooled[i].stats) << "cell " << i;
    EXPECT_TRUE(serial[i].controller == pooled[i].controller)
        << "cell " << i;
    EXPECT_EQ(serial[i].results, pooled[i].results) << "cell " << i;
    EXPECT_TRUE(serial[i].violations.empty());
  }
}

TEST(AdaptiveProto, BreakerRecoversUnderAShrinkingWindow) {
  // Heavy loss trips breakers, and with the controller attached each
  // trip also shrinks the AIMD cap. The half-open probe must still get
  // through the tightened window, close the breaker, and let clean-ack
  // epochs raise the cap again — shrinking credit must never starve
  // the probe that ends the outage.
  Fixture fx;
  OverloadConfig config;
  config.service_rate = 8.0;
  config.queue_capacity = 64;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 8.0;
  config.seed = 5;
  faults::LinkFaults link;
  link.drop = 0.45;
  faults::FaultPlan lossy_plan;
  lossy_plan.set_default_faults(link);
  AdaptiveConfig acfg;
  acfg.epoch_acks = 2;  // 45% drop: epochs must be short enough to complete
  const AdaptiveOutcome out =
      run_adaptive(fx, config, acfg, 3, 12, 3, lossy_plan);
  EXPECT_GT(out.stats.breaker_trips, 0u);
  EXPECT_GT(out.stats.window_decreases, 0u);
  EXPECT_GT(out.stats.breaker_probes, 0u);
  EXPECT_GT(out.stats.breaker_closes, 0u);
  EXPECT_GT(out.stats.window_increases, 0u);
  EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(AdaptiveProto, FullyDisabledControllerLeavesTheRunByteIdentical) {
  // `use_adaptive` with every sub-controller off must not perturb a
  // single draw: the data path consults the controller but the answers
  // are the static configuration's.
  Fixture fx;
  AdaptiveConfig off;
  off.aimd = false;
  off.tune_admission = false;
  off.place_replicas = false;

  auto run_static = [&fx](bool attach_disabled_controller) {
    AdaptiveOutcome out;
    Simulator sim;
    const faults::FaultPlan clean_plan;  // the channel keeps a reference
    faults::UnreliableChannel channel(clean_plan,
                                      SeedTree(9).seed_for("channel"));
    AdaptiveConfig off_config;
    off_config.aimd = false;
    off_config.tune_admission = false;
    off_config.place_replicas = false;
    AdaptiveController tuner(off_config);
    DistributedMot dist(*fx.provider, sim, fx.chain_options);
    dist.use_channel(&channel);
    dist.replicate_detection_lists(true);
    ServiceModel service(sim, fx.graph.num_nodes(),
                         OverloadConfig{});
    dist.use_overload(&service);
    if (attach_disabled_controller) dist.use_adaptive(&tuner);
    Rng rng = SeedTree(9).stream("flood");
    const std::size_t n = fx.graph.num_nodes();
    for (ObjectId o = 0; o < 4; ++o) dist.publish(o, rng.below(n));
    sim.run();
    for (int i = 0; i < 30; ++i) {
      dist.query(rng.below(n), 0, [&out](const QueryResult& r) {
        out.results.push_back(r.proxy);
      });
    }
    sim.run();
    if (attach_disabled_controller) dist.adaptive_step();
    out.stats = dist.stats();
    out.violations = dist.invariant_violations();
    return out;
  };

  const AdaptiveOutcome with = run_static(true);
  const AdaptiveOutcome without = run_static(false);
  EXPECT_EQ(with.stats, without.stats);
  EXPECT_EQ(with.results, without.results);
  EXPECT_TRUE(with.violations.empty());
}

// ---------------------------------------------------------------------------
// Correlated chaos
// ---------------------------------------------------------------------------

bool same_event(const chaos::FaultEvent& a, const chaos::FaultEvent& b) {
  return a.kind == b.kind && a.round == b.round && a.victim == b.victim &&
         a.pivot == b.pivot && a.duration == b.duration &&
         a.delay == b.delay;
}

TEST(AdaptiveChaos, CorrelatedEventsExtendSchedulesWithoutPerturbingLegacy) {
  chaos::ScheduleParams sp;
  sp.rounds = 6;
  sp.num_events = 5;
  sp.num_nodes = 64;
  const chaos::ChaosSchedule legacy = chaos::generate_schedule(17, sp);

  sp.correlated_events = 2;
  const chaos::ChaosSchedule correlated = chaos::generate_schedule(17, sp);
  ASSERT_EQ(correlated.events.size(), legacy.events.size() + 6);
  // The legacy schedule survives as an ordered subsequence: correlated
  // groups draw from their own substream and merge by stable sort.
  std::size_t matched = 0;
  for (const chaos::FaultEvent& event : correlated.events) {
    if (matched < legacy.events.size() &&
        same_event(event, legacy.events[matched])) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, legacy.events.size());
  // Each group lands a burst + crash + partition on one shared round —
  // the compound stress the control plane exists for.
  int bursts = 0, crashes = 0, partitions = 0;
  for (const chaos::FaultEvent& event : correlated.events) {
    if (event.kind == chaos::FaultKind::kBurst) ++bursts;
    if (event.kind == chaos::FaultKind::kCrash) ++crashes;
    if (event.kind == chaos::FaultKind::kPartition) ++partitions;
  }
  EXPECT_GE(bursts, 2);
  EXPECT_GE(partitions, 2);
  EXPECT_GE(crashes, 2);
}

chaos::RunnerParams adaptive_chaos_params() {
  chaos::RunnerParams params;
  params.rounds = 4;
  params.overload = true;
  params.overload_config.service_rate = 0.5;
  params.overload_config.queue_capacity = 8;
  params.overload_config.degrade_fraction = 0.25;
  params.adaptive = true;
  params.correlated_events = 1;
  params.burst_multiplier = 6.0;
  return params;
}

TEST(AdaptiveChaos, CorrelatedAdaptiveRunsStayGreenAndAreDeterministic) {
  const chaos::RunnerParams params = adaptive_chaos_params();
  chaos::ChaosRunner runner(params);

  chaos::ScheduleParams sp;
  sp.rounds = params.rounds;
  sp.num_nodes = runner.net().num_nodes();
  sp.correlated_events = params.correlated_events;
  const chaos::ChaosSchedule schedule = chaos::generate_schedule(3, sp);

  const chaos::RunReport a = runner.run(schedule);
  EXPECT_TRUE(a.ok()) << a.violations.front();
  const chaos::RunReport b = runner.run(schedule);
  EXPECT_EQ(a.proto_stats, b.proto_stats);
  EXPECT_EQ(a.service_stats, b.service_stats);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
}

TEST(AdaptiveChaos, ExplorerStaysGreenOverASeedRange) {
  chaos::ChaosRunner runner(adaptive_chaos_params());
  const chaos::ExplorerOutcome outcome = runner.explore(0, 5);
  EXPECT_FALSE(outcome.violation_found)
      << "seed " << outcome.seed << ": "
      << (outcome.report.violations.empty()
              ? ""
              : outcome.report.violations.front());
  EXPECT_EQ(outcome.seeds_run, 6u);
}

TEST(AdaptiveChaos, InjectedBugUnderCorrelatedScheduleShrinks) {
  chaos::RunnerParams params = adaptive_chaos_params();
  params.events_per_schedule = 12;
  params.inject_recovery_bug = true;
  chaos::ChaosRunner runner(params);
  const chaos::ExplorerOutcome outcome = runner.explore(0, 19);
  ASSERT_TRUE(outcome.violation_found);
  ASSERT_FALSE(outcome.shrunk.events.empty());
  EXPECT_LT(outcome.shrunk.events.size(), outcome.schedule.events.size());
  EXPECT_FALSE(outcome.report.ok());  // the shrunk repro replays
  const chaos::RunReport again = runner.run(outcome.shrunk);
  EXPECT_EQ(again.violations, outcome.report.violations);
  EXPECT_EQ(again.violation_round, outcome.report.violation_round);
}

}  // namespace
}  // namespace mot
