#include "core/mot.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "workload/mobility.hpp"

namespace mot {
namespace {

struct Fixture {
  explicit Fixture(std::size_t side = 8, std::uint64_t seed = 7)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params params;
    params.seed = seed;
    hierarchy = DoublingHierarchy::build(graph, *oracle, params);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
};

TEST(MotPathProvider, SequenceStartsAtSelfEndsAtRoot) {
  const Fixture fx;
  MotOptions options;
  const MotPathProvider provider(*fx.hierarchy, options);
  for (NodeId u = 0; u < fx.graph.num_nodes(); u += 9) {
    const auto seq = provider.upward_sequence(u);
    ASSERT_GE(seq.size(), 2u);
    EXPECT_EQ(seq.front().node.level, 0);
    EXPECT_EQ(seq.front().node.node, u);
    EXPECT_EQ(seq.back().node.level, fx.hierarchy->height());
    EXPECT_EQ(seq.back().node.node, fx.hierarchy->root());
  }
}

TEST(MotPathProvider, SingleParentModeHasOneStopPerLevel) {
  const Fixture fx;
  MotOptions options;
  options.use_parent_sets = false;
  const MotPathProvider provider(*fx.hierarchy, options);
  const auto seq = provider.upward_sequence(13);
  EXPECT_EQ(seq.size(),
            static_cast<std::size_t>(fx.hierarchy->height()) + 1);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].node.level, static_cast<int>(i));
  }
}

TEST(MotPathProvider, ParentSetModeVisitsGroupsInIdOrder) {
  const Fixture fx;
  MotOptions options;
  options.use_parent_sets = true;
  const MotPathProvider provider(*fx.hierarchy, options);
  const auto seq = provider.upward_sequence(13);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    if (seq[i].node.level == seq[i - 1].node.level) {
      EXPECT_LT(seq[i - 1].node.node, seq[i].node.node);
    } else {
      EXPECT_EQ(seq[i].node.level, seq[i - 1].node.level + 1);
    }
  }
}

TEST(MotPathProvider, SpecialParentIsOffsetLevelsUp) {
  const Fixture fx;
  MotOptions options;
  options.use_parent_sets = false;
  options.special_parent_offset = 2;
  const MotPathProvider provider(*fx.hierarchy, options);
  const auto seq = provider.upward_sequence(20);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const auto sp = provider.special_parent(20, i);
    const int target = seq[i].node.level + 2;
    if (target > fx.hierarchy->height()) {
      EXPECT_FALSE(sp.has_value());
    } else {
      ASSERT_TRUE(sp.has_value());
      EXPECT_EQ(sp->level, target);
    }
  }
}

TEST(MotPathProvider, SpecialParentsDisabled) {
  const Fixture fx;
  MotOptions options;
  options.use_special_parents = false;
  const MotPathProvider provider(*fx.hierarchy, options);
  EXPECT_FALSE(provider.special_parent(3, 0).has_value());
}

TEST(MotPathProvider, DelegateLocalWithoutLoadBalance) {
  const Fixture fx;
  MotOptions options;
  const MotPathProvider provider(*fx.hierarchy, options);
  const auto access = provider.delegate({2, fx.hierarchy->root()}, 42);
  EXPECT_EQ(access.storage, fx.hierarchy->root());
  EXPECT_DOUBLE_EQ(access.route_cost, 0.0);
}

TEST(MotPathProvider, DelegateHashesIntoCluster) {
  const Fixture fx;
  MotOptions options;
  options.load_balance = true;
  const MotPathProvider provider(*fx.hierarchy, options);
  const int level = std::min(3, fx.hierarchy->height());
  const NodeId center = fx.hierarchy->members(level)[0];
  const auto cluster = fx.hierarchy->cluster(level, center);
  bool some_remote = false;
  for (ObjectId object = 0; object < 64; ++object) {
    const auto access = provider.delegate({level, center}, object);
    EXPECT_TRUE(std::binary_search(cluster.begin(), cluster.end(),
                                   access.storage));
    if (access.storage != center) {
      some_remote = true;
      EXPECT_GT(access.route_cost, 0.0);
    }
  }
  EXPECT_TRUE(some_remote);  // hashing spreads objects off the center
}

TEST(MotPathProvider, Level0DelegateAlwaysLocal) {
  const Fixture fx;
  MotOptions options;
  options.load_balance = true;
  const MotPathProvider provider(*fx.hierarchy, options);
  const auto access = provider.delegate({0, 17}, 3);
  EXPECT_EQ(access.storage, 17u);
  EXPECT_DOUBLE_EQ(access.route_cost, 0.0);
}

class MotTrackerParamTest : public ::testing::TestWithParam<bool> {};

TEST_P(MotTrackerParamTest, RandomWalkKeepsInvariant) {
  const Fixture fx;
  MotOptions options;
  options.use_parent_sets = GetParam();
  MotTracker tracker(*fx.hierarchy, options);
  tracker.publish(0, 10);
  Rng rng(11);
  NodeId at = 10;
  for (int i = 0; i < 150; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    tracker.move(0, at);
    tracker.chain().validate(0);
  }
  EXPECT_EQ(tracker.proxy_of(0), at);
  // Queries from every corner locate it.
  for (const NodeId from : {0u, 7u, 56u, 63u}) {
    EXPECT_EQ(tracker.query(from, 0).proxy, at);
  }
}

INSTANTIATE_TEST_SUITE_P(ParentSets, MotTrackerParamTest,
                         ::testing::Bool());

TEST(MotTracker, QueryCostBoundedByConstantTimesDistance) {
  // Theorem 4.11 in spirit: after heavy churn, query cost stays within a
  // constant factor of distance on the doubling hierarchy.
  const Fixture fx(10, 3);
  MotOptions options;
  options.use_parent_sets = false;
  MotTracker tracker(*fx.hierarchy, options);

  TraceParams params;
  params.num_objects = 20;
  params.moves_per_object = 60;
  Rng rng(5);
  const MovementTrace trace = generate_trace(fx.graph, params, rng);
  for (ObjectId o = 0; o < 20; ++o) {
    tracker.publish(o, trace.initial_proxy[o]);
  }
  for (const MoveOp& op : trace.moves) tracker.move(op.object, op.to);

  Weight total_cost = 0.0;
  Weight total_optimal = 0.0;
  Rng qrng(9);
  for (int i = 0; i < 300; ++i) {
    const auto from = static_cast<NodeId>(rng.below(fx.graph.num_nodes()));
    const auto object = static_cast<ObjectId>(qrng.below(20));
    const NodeId proxy = tracker.proxy_of(object);
    if (from == proxy) continue;
    const QueryResult result = tracker.query(from, object);
    EXPECT_EQ(result.proxy, proxy);
    total_cost += result.cost;
    total_optimal += fx.oracle->distance(from, proxy);
  }
  EXPECT_LT(total_cost / total_optimal, 12.0);  // O(1), generous constant
}

TEST(MotTracker, MoveCostScalesWithDistanceNotDiameter) {
  const Fixture fx(12, 3);
  MotOptions options;
  options.use_parent_sets = false;
  MotTracker tracker(*fx.hierarchy, options);
  tracker.publish(0, 0);

  // Many 1-hop moves: average cost must stay far below the diameter.
  Rng rng(13);
  NodeId at = 0;
  Weight total = 0.0;
  const int kMoves = 300;
  for (int i = 0; i < kMoves; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    const NodeId next = neighbors[rng.below(neighbors.size())].to;
    total += tracker.move(0, next).cost;
    at = next;
  }
  const double diameter = 22.0;  // 12x12 grid
  EXPECT_LT(total / kMoves, 2.0 * diameter);
  EXPECT_GT(total / kMoves, 1.0);  // must pay at least the move itself
}

TEST(MotTracker, LoadBalancedVariantFlattensLoad) {
  const Fixture fx(12, 3);
  MotOptions plain_options;
  MotOptions lb_options;
  lb_options.load_balance = true;
  MotTracker plain(*fx.hierarchy, plain_options);
  MotTracker balanced(*fx.hierarchy, lb_options);

  for (ObjectId o = 0; o < 80; ++o) {
    const auto proxy = static_cast<NodeId>((o * 13) % 144);
    plain.publish(o, proxy);
    balanced.publish(o, proxy);
  }
  const auto max_of = [](const std::vector<std::size_t>& load) {
    std::size_t best = 0;
    for (const auto l : load) best = std::max(best, l);
    return best;
  };
  EXPECT_LT(max_of(balanced.load_per_node()),
            max_of(plain.load_per_node()));
}

TEST(MotTracker, LoadBalancingCostsMore) {
  const Fixture fx(8, 3);
  MotOptions plain_options;
  plain_options.use_parent_sets = false;
  MotOptions lb_options = plain_options;
  lb_options.load_balance = true;
  MotTracker plain(*fx.hierarchy, plain_options);
  MotTracker balanced(*fx.hierarchy, lb_options);
  plain.publish(0, 0);
  balanced.publish(0, 0);
  Rng rng(17);
  NodeId at = 0;
  for (int i = 0; i < 60; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    plain.move(0, at);
    balanced.move(0, at);
  }
  // Corollary 5.2: the de Bruijn detour costs extra.
  EXPECT_GT(balanced.meter().total_distance(),
            plain.meter().total_distance());
  balanced.chain().validate_all();
}

TEST(MotTracker, DeterministicForSeeds) {
  const Fixture fx(8, 21);
  MotOptions options;
  MotTracker a(*fx.hierarchy, options);
  MotTracker b(*fx.hierarchy, options);
  for (MotTracker* t : {&a, &b}) {
    t->publish(0, 3);
    t->move(0, 4);
    t->move(0, 12);
    t->query(60, 0);
  }
  EXPECT_DOUBLE_EQ(a.meter().total_distance(), b.meter().total_distance());
}

TEST(MotTracker, NamesEncodeConfiguration) {
  MotOptions options;
  EXPECT_EQ(make_mot_name(options), "MOT");
  options.load_balance = true;
  EXPECT_EQ(make_mot_name(options), "MOT-LB");
  options.load_balance = false;
  options.use_parent_sets = false;
  EXPECT_EQ(make_mot_name(options), "MOT(no-psets)");
  options.use_parent_sets = true;
  options.use_special_parents = false;
  EXPECT_EQ(make_mot_name(options), "MOT(no-sp)");
}

TEST(MotTracker, PublishCostBoundedByDiameterConstant) {
  // Theorem 4.1: publish cost is O(D) per object.
  const Fixture fx(10, 3);
  MotOptions options;
  options.use_parent_sets = false;
  const double diameter = 18.0;  // 10x10 grid
  for (const NodeId proxy : {0u, 9u, 44u, 99u, 55u}) {
    MotTracker tracker(*fx.hierarchy, options);
    tracker.publish(0, proxy);
    EXPECT_LT(tracker.meter().total_distance(), 8.0 * diameter)
        << "proxy " << proxy;
  }
}

}  // namespace
}  // namespace mot
