#include "viz/dot_export.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"

namespace mot {
namespace {

// Crude structural checks: balanced braces, expected node/edge counts.
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(DotExport, GraphHasAllNodesAndEdges) {
  const Graph g = make_grid(3, 3);
  const std::string dot = viz::graph_to_dot(g);
  EXPECT_NE(dot.find("graph sensors {"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "[label="), 9u);
  EXPECT_EQ(count_occurrences(dot, " -- "), g.num_edges());
  EXPECT_NE(dot.find("pos="), std::string::npos);  // grid is embedded
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, WeightedEdgesCarryLabels) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 2.5);
  const Graph g = std::move(builder).build();
  const std::string dot = viz::graph_to_dot(g);
  EXPECT_NE(dot.find("label=\"2.5\""), std::string::npos);
}

TEST(DotExport, HierarchyLayersAndEdges) {
  const Graph g = make_grid(4, 4);
  const auto oracle = make_distance_oracle(g);
  DoublingHierarchy::Params params;
  params.seed = 3;
  const auto hierarchy = DoublingHierarchy::build(g, *oracle, params);
  const std::string dot = viz::hierarchy_to_dot(*hierarchy);
  EXPECT_NE(dot.find("digraph overlay {"), std::string::npos);
  // One rank group per level.
  EXPECT_EQ(count_occurrences(dot, "rank=same"),
            static_cast<std::size_t>(hierarchy->height()) + 1);
  // Every non-root member has exactly one primary-parent edge.
  std::size_t expected_edges = 0;
  for (int level = 0; level < hierarchy->height(); ++level) {
    expected_edges += hierarchy->members(level).size();
  }
  EXPECT_EQ(count_occurrences(dot, " -> "), expected_edges);
}

TEST(DotExport, SpanningTreeRootIsDoubleCircle) {
  const Graph g = make_grid(4, 4);
  EdgeRates rates;
  const SpanningTree tree = build_dat(g, rates, 5);
  const std::string dot = viz::spanning_tree_to_dot(tree, g);
  EXPECT_NE(dot.find("n5 [shape=doublecircle]"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, " -> "), g.num_nodes() - 1);
}

TEST(DotExport, DendrogramShowsHosts) {
  const Graph g = make_grid(4, 4);
  EdgeRates rates;
  for (NodeId v = 0; v < 16; ++v) {
    for (const Edge& e : g.neighbors(v)) {
      if (e.to > v) rates.record(v, e.to, 1.0 + (v % 3));
    }
  }
  const Dendrogram dendrogram = build_stun_dendrogram(g, rates, 5);
  const std::string dot = viz::dendrogram_to_dot(dendrogram);
  EXPECT_NE(dot.find("digraph dendrogram {"), std::string::npos);
  EXPECT_NE(dot.find("host"), std::string::npos);
  // Every node except the root has a parent edge.
  EXPECT_EQ(count_occurrences(dot, " -> "), dendrogram.nodes.size() - 1);
}

}  // namespace
}  // namespace mot
