// The chaos harness itself: schedule generation is deterministic and
// round-sorted, a schedule replays bit-identically, the explorer stays
// green over the acceptance topologies, an injected recovery defect is
// caught and shrunk to a tiny deterministic repro, and the churn driver
// keeps every invariant through node join/leave/crash cycles.
#include "chaos/chaos_runner.hpp"
#include "chaos/churn.hpp"
#include "chaos/schedule.hpp"
#include "chaos/topology.hpp"

#include <gtest/gtest.h>

namespace mot::chaos {
namespace {

constexpr Topology kAllTopologies[] = {Topology::kGrid, Topology::kTorus,
                                       Topology::kRing};

bool same_events(const ChaosSchedule& a, const ChaosSchedule& b) {
  if (a.events.size() != b.events.size()) return false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const FaultEvent& x = a.events[i];
    const FaultEvent& y = b.events[i];
    if (x.kind != y.kind || x.round != y.round || x.victim != y.victim ||
        x.pivot != y.pivot || x.duration != y.duration) {
      return false;
    }
  }
  return true;
}

TEST(ChaosSchedule, GenerationIsDeterministicAndSortedByRound) {
  ScheduleParams sp;
  sp.rounds = 8;
  sp.num_events = 12;
  sp.num_nodes = 64;
  const ChaosSchedule a = generate_schedule(42, sp);
  const ChaosSchedule b = generate_schedule(42, sp);
  ASSERT_EQ(a.events.size(), 12u);
  EXPECT_TRUE(same_events(a, b));
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(a.events[i - 1].round, a.events[i].round);
    }
    EXPECT_LT(a.events[i].round, sp.rounds);
    EXPECT_LT(a.events[i].victim, sp.num_nodes);
    EXPECT_GE(a.events[i].duration, 1);
  }
  EXPECT_FALSE(same_events(a, generate_schedule(43, sp)));
}

TEST(ChaosSchedule, RestartEventsLeaveLegacySchedulesUnperturbed) {
  ScheduleParams sp;
  sp.rounds = 8;
  sp.num_events = 12;
  sp.num_nodes = 64;
  const ChaosSchedule legacy = generate_schedule(42, sp);
  // Restart events draw from their own substream and are appended
  // before the stable round sort: stripping them out of an augmented
  // schedule must recover the legacy schedule event for event, so old
  // seed corpora keep reproducing the same runs.
  sp.restart_events = 3;
  const ChaosSchedule augmented = generate_schedule(42, sp);
  ASSERT_EQ(augmented.events.size(), legacy.events.size() + 3u);
  ChaosSchedule stripped = augmented;
  std::erase_if(stripped.events, [](const FaultEvent& event) {
    return event.kind == FaultKind::kRestart;
  });
  EXPECT_TRUE(same_events(stripped, legacy));
  for (const FaultEvent& event : augmented.events) {
    if (event.kind != FaultKind::kRestart) continue;
    EXPECT_LT(event.round, sp.rounds);
    EXPECT_GE(event.delay, 1.0);
  }
}

TEST(ChaosRunner, DurableRestartReplayIsDeterministic) {
  RunnerParams params;
  params.restart_events = 2;
  params.durability = true;
  params.snapshot_dir = ::testing::TempDir() + "mot_chaos_durable_replay";
  ChaosRunner runner(params);
  ScheduleParams sp;
  sp.num_nodes = runner.net().num_nodes();
  sp.restart_events = params.restart_events;
  const ChaosSchedule schedule = generate_schedule(3, sp);
  const RunReport a = runner.run(schedule);
  // The second run starts over the first run's on-disk store; the
  // initial snapshot re-grounds it, so stale state cannot leak in.
  const RunReport b = runner.run(schedule);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_TRUE(a.ok()) << (a.violations.empty() ? "" : a.violations[0]);
  EXPECT_GT(a.restarts, 0u);
  EXPECT_EQ(a.restarts, a.restores);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.journal_replayed, b.journal_replayed);
  EXPECT_EQ(a.answer_digest, b.answer_digest);
}

TEST(ChaosRunner, SameScheduleReplaysIdentically) {
  ChaosRunner runner(RunnerParams{});
  ScheduleParams sp;
  sp.num_nodes = runner.net().num_nodes();
  const ChaosSchedule schedule = generate_schedule(3, sp);
  const RunReport a = runner.run(schedule);
  const RunReport b = runner.run(schedule);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.faults_skipped, b.faults_skipped);
  EXPECT_EQ(a.moves_issued, b.moves_issued);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.proto_stats.data_sent, b.proto_stats.data_sent);
  EXPECT_EQ(a.proto_stats.retransmissions, b.proto_stats.retransmissions);
  EXPECT_EQ(a.channel_stats.transmissions, b.channel_stats.transmissions);
  EXPECT_EQ(a.channel_stats.dropped, b.channel_stats.dropped);
}

TEST(ChaosExplorer, StaysGreenOnEveryAcceptanceTopology) {
  for (const Topology topo : kAllTopologies) {
    RunnerParams params;
    params.topology = topo;
    ChaosRunner runner(params);
    const ExplorerOutcome outcome = runner.explore(0, 7);
    EXPECT_FALSE(outcome.violation_found)
        << topology_name(topo) << " violated at seed " << outcome.seed;
    EXPECT_EQ(outcome.seeds_run, 8u);
  }
}

TEST(ChaosExplorer, InjectedRecoveryBugIsCaughtAndShrunk) {
  RunnerParams params;
  params.events_per_schedule = 12;
  params.inject_recovery_bug = true;
  ChaosRunner runner(params);
  const ExplorerOutcome outcome = runner.explore(0, 19);
  ASSERT_TRUE(outcome.violation_found);
  ASSERT_FALSE(outcome.shrunk.events.empty());
  EXPECT_LE(outcome.shrunk.events.size(), 10u);
  EXPECT_FALSE(outcome.report.ok());  // the shrunk repro replays
  // And keeps replaying: the repro is (seed, events)-deterministic.
  const RunReport again = runner.run(outcome.shrunk);
  EXPECT_EQ(again.violations, outcome.report.violations);
  EXPECT_EQ(again.violation_round, outcome.report.violation_round);
}

TEST(ChaosChurn, DriverKeepsEveryInvariantOnAllTopologies) {
  for (const Topology topo : kAllTopologies) {
    const ChaosNet net = build_chaos_net(topo, 7);
    const ChurnReport report = run_churn(net, ChurnParams{});
    EXPECT_TRUE(report.ok()) << topology_name(topo) << ": "
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    EXPECT_GT(report.moves, 0u);
    EXPECT_GT(report.queries, 0u);
    EXPECT_GT(report.leaves + report.crashes, 0u);
  }
}

TEST(ChaosChurn, ReportIsDeterministicForAFixedSeed) {
  const ChaosNet net = build_chaos_net(Topology::kGrid, 7);
  ChurnParams cp;
  cp.seed = 9;
  const ChurnReport a = run_churn(net, cp);
  const ChurnReport b = run_churn(net, cp);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.rejoins, b.rejoins);
  EXPECT_EQ(a.entries_repaired, b.entries_repaired);
  EXPECT_EQ(a.cluster_updates, b.cluster_updates);
  EXPECT_EQ(a.violations, b.violations);
}

}  // namespace
}  // namespace mot::chaos
