#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/cost_meter.hpp"

namespace mot {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(42));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  sim.schedule(5.0, [&] { times.push_back(sim.now()); });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(times.size(), 2u);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  int count = 0;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule(1.0, tick);
  };
  sim.schedule(0.0, tick);
  sim.run(10);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double when = -1.0;
  sim.schedule(2.0, [&] {
    sim.schedule(0.0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(CostMeter, AccumulatesAndResets) {
  CostMeter meter;
  meter.charge(2.5);
  meter.charge(1.5, 3);
  EXPECT_DOUBLE_EQ(meter.total_distance(), 4.0);
  EXPECT_EQ(meter.total_messages(), 4u);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total_distance(), 0.0);
  EXPECT_EQ(meter.total_messages(), 0u);
}

TEST(CostWindow, MeasuresDelta) {
  CostMeter meter;
  meter.charge(10.0);
  const CostWindow window(meter);
  meter.charge(3.0);
  meter.charge(4.0);
  EXPECT_DOUBLE_EQ(window.cost(), 7.0);
  EXPECT_EQ(window.messages(), 2u);
}

}  // namespace
}  // namespace mot
