// Socket transport and multi-process cluster runtime. The contracts:
// the loopback FrameStream carves exactly the frames that were sent, the
// SocketTransport Channel keeps simulator timing bit-identical to
// ReliableChannel while physically moving every hop through the kernel,
// UnreliableChannel composes over it via set_inner(), and a sharded
// cluster (threaded here; bench/cluster_runner forks real processes)
// answers the same queries at the same costs as the single-process
// runtime on the same seed — including when one shard encodes frames
// from the future.
#include "netio/cluster.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/mot.hpp"
#include "faults/unreliable_channel.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "netio/socket.hpp"
#include "netio/transport.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/channel_factory.hpp"
#include "util/rng.hpp"

namespace mot {
namespace {

using netio::ClusterCoordinator;
using netio::FrameStream;
using netio::Listener;
using netio::ShardWorker;
using netio::SocketTransport;
using netio::WorkerConfig;
using proto::DistributedMot;

// Same deterministic world as tests/test_proto.cpp: every party that
// builds it from the same parameters gets byte-identical structure.
struct Fixture {
  explicit Fixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// --- FrameStream over loopback TCP ---------------------------------------

TEST(NetSocket, FramesSurviveTheLoopbackRoundTrip) {
  Listener listener;
  ASSERT_TRUE(listener.open());
  netio::Socket client = netio::connect_loopback(listener.port());
  ASSERT_TRUE(client.valid());
  netio::Socket server = listener.accept();
  ASSERT_TRUE(server.valid());

  FrameStream out(std::move(client));
  FrameStream in(std::move(server));

  // A burst of back-to-back frames lands as exactly that sequence.
  for (std::uint64_t seq = 1; seq <= 64; ++seq) {
    ASSERT_TRUE(out.send(wire::encode_loopback({.seq = seq})));
  }
  for (std::uint64_t seq = 1; seq <= 64; ++seq) {
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(in.recv(&payload, /*block=*/true), wire::DecodeError::kNone);
    wire::LoopbackFrame frame;
    ASSERT_EQ(wire::decode_loopback(payload, &frame),
              wire::DecodeError::kNone);
    EXPECT_EQ(frame.seq, seq);
  }
  // Nothing further buffered; a non-blocking read reports "no frame".
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(in.recv(&payload, /*block=*/false),
            wire::DecodeError::kShortRead);
  EXPECT_FALSE(in.closed());
}

TEST(NetSocket, PeerHangupFlipsClosed) {
  Listener listener;
  ASSERT_TRUE(listener.open());
  netio::Socket client = netio::connect_loopback(listener.port());
  netio::Socket server = listener.accept();
  FrameStream in(std::move(server));
  client.close();

  std::vector<std::uint8_t> payload;
  EXPECT_EQ(in.recv(&payload, /*block=*/true),
            wire::DecodeError::kShortRead);
  EXPECT_TRUE(in.closed());
}

TEST(NetSocket, PollReportsTheReadableStream) {
  Listener listener;
  ASSERT_TRUE(listener.open());
  netio::Socket a_client = netio::connect_loopback(listener.port());
  netio::Socket a_server = listener.accept();
  netio::Socket b_client = netio::connect_loopback(listener.port());
  netio::Socket b_server = listener.accept();

  FrameStream writer(std::move(b_client));
  ASSERT_TRUE(writer.send(wire::encode_shutdown()));

  const int fds[] = {a_server.fd(), b_server.fd()};
  const std::vector<std::size_t> ready = netio::poll_readable(fds, 2000);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 1u);  // only stream b has bytes
}

// --- SocketTransport as a sim::Channel -----------------------------------

struct RunOutcome {
  // Results flattened to comparable tuples (the result structs carry no
  // operator==).
  std::vector<std::tuple<bool, NodeId, Weight, int, bool, Weight>> queries;
  std::vector<std::pair<Weight, int>> moves;
  std::vector<std::size_t> loads;
  double meter = 0.0;

  bool operator==(const RunOutcome&) const = default;
};

// Drives a fixed publish/move/query workload over `channel` (nullptr =
// direct scheduling) and snapshots everything observable.
RunOutcome drive_workload(const Fixture& fx, Channel* channel) {
  Simulator sim;
  DistributedMot mot(*fx.provider, sim, fx.chain_options);
  if (channel != nullptr) mot.use_channel(channel);
  RunOutcome outcome;

  mot.publish(0, 12);
  sim.run();
  Rng rng(99);
  NodeId at = 12;
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    mot.move(0, at, [&](const MoveResult& r) {
      outcome.moves.emplace_back(r.cost, r.peak_level);
    });
    sim.run();
    mot.query(static_cast<NodeId>(rng.below(fx.graph.num_nodes())), 0,
              [&](const QueryResult& r) {
                outcome.queries.emplace_back(r.found, r.proxy, r.cost,
                                             r.found_level, r.degraded,
                                             r.staleness_bound);
              });
    sim.run();
  }
  outcome.loads = mot.load_per_node();
  outcome.meter = mot.meter().total_distance();
  return outcome;
}

TEST(NetTransport, SocketChannelMatchesReliableChannelBitForBit) {
  const Fixture fx;
  ReliableChannel reliable;
  const RunOutcome reference = drive_workload(fx, &reliable);

  SocketTransport transport;
  ASSERT_TRUE(transport.ok());
  const RunOutcome socketed = drive_workload(fx, &transport);

  EXPECT_EQ(socketed, reference);
  EXPECT_EQ(transport.pending(), 0u);
  // Every hop physically crossed the kernel's loopback stack.
  EXPECT_GT(transport.stats().frames_sent, 0u);
  EXPECT_EQ(transport.stats().frames_sent, transport.stats().frames_received);
  EXPECT_EQ(transport.stats().bytes_sent, transport.stats().bytes_received);
}

TEST(NetTransport, UnreliableChannelComposesOverTheSocket) {
  const Fixture fx;
  faults::FaultPlan plan;  // no faults: pure pass-through layering
  {
    faults::UnreliableChannel direct(plan, 5);
    faults::UnreliableChannel layered(plan, 5);
    SocketTransport transport;
    ASSERT_TRUE(transport.ok());
    layered.set_inner(&transport);

    const RunOutcome reference = drive_workload(fx, &direct);
    const RunOutcome socketed = drive_workload(fx, &layered);
    EXPECT_EQ(socketed, reference);
    EXPECT_GT(transport.stats().frames_sent, 0u);
    EXPECT_EQ(transport.pending(), 0u);
  }
}

TEST(NetTransport, ChannelFactoryKnowsTheRegisteredLayers) {
  EXPECT_NE(make_channel("reliable"), nullptr);
  EXPECT_EQ(make_channel("no-such-channel"), nullptr);

  // Register the socket layer the way a binary's startup would
  // (bench/cluster_runner does the same); duplicates are refused.
  const bool fresh = register_channel(
      "socket", [] { return std::make_unique<SocketTransport>(); });
  const auto names = channel_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "reliable"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "socket"), names.end());
  EXPECT_FALSE(register_channel("socket", [] {
    return std::make_unique<SocketTransport>();
  })) << "duplicate registration must be refused";
  (void)fresh;

  const auto socket_channel = make_channel("socket");
  ASSERT_NE(socket_channel, nullptr);
  const Fixture fx;
  ReliableChannel reliable;
  EXPECT_EQ(drive_workload(fx, socket_channel.get()),
            drive_workload(fx, &reliable));
}

// --- Sharded cluster vs the single-process runtime -----------------------

struct WorkloadStep {
  NodeId move_to = kInvalidNode;
  NodeId query_from = kInvalidNode;
};

std::vector<WorkloadStep> make_workload(const Fixture& fx, NodeId start,
                                        int steps, std::uint64_t seed) {
  SeedTree seeds(seed);
  Rng rng = seeds.stream("cluster-workload");
  std::vector<WorkloadStep> workload;
  NodeId at = start;
  for (int i = 0; i < steps; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    workload.push_back(
        {.move_to = at,
         .query_from = static_cast<NodeId>(rng.below(fx.graph.num_nodes()))});
  }
  return workload;
}

void run_cluster_parity(std::uint32_t num_shards,
                        std::uint8_t odd_shard_version) {
  constexpr NodeId kStart = 12;
  constexpr ObjectId kObject = 0;

  ClusterCoordinator coordinator(num_shards);
  ASSERT_TRUE(coordinator.open());
  const std::uint16_t port = coordinator.port();

  std::vector<std::thread> threads;
  std::vector<int> rcs(num_shards, -1);
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    threads.emplace_back([shard, num_shards, port, odd_shard_version,
                          &rcs] {
      // Each worker builds its own world from the shared parameters —
      // exactly what a forked process would do.
      const Fixture fx;
      Simulator sim;
      DistributedMot mot(*fx.provider, sim, fx.chain_options);
      WorkerConfig config;
      config.shard = shard;
      config.num_shards = num_shards;
      config.coordinator_port = port;
      if (shard % 2 == 1) config.encode_version = odd_shard_version;
      ShardWorker worker(config, *fx.provider, sim, mot);
      rcs[shard] = worker.run();
    });
  }
  ASSERT_TRUE(coordinator.bootstrap());

  // Single-process reference on the identical world and workload.
  const Fixture fx;
  Simulator ref_sim;
  DistributedMot reference(*fx.provider, ref_sim, fx.chain_options);
  reference.publish(kObject, kStart);
  ref_sim.run();
  ASSERT_TRUE(coordinator.publish(kObject, kStart));

  for (const WorkloadStep& step : make_workload(fx, kStart, 25, 0xc1u)) {
    MoveResult expected_move;
    reference.move(kObject, step.move_to,
                   [&](const MoveResult& r) { expected_move = r; });
    ref_sim.run();
    const auto moved = coordinator.move(kObject, step.move_to);
    ASSERT_TRUE(moved.has_value());
    ASSERT_DOUBLE_EQ(moved->cost, expected_move.cost);
    ASSERT_EQ(moved->peak_level, expected_move.peak_level);

    QueryResult expected_query;
    reference.query(step.query_from, kObject,
                    [&](const QueryResult& r) { expected_query = r; });
    ref_sim.run();
    const auto answered = coordinator.query(step.query_from, kObject);
    ASSERT_TRUE(answered.has_value());
    ASSERT_EQ(answered->found, expected_query.found);
    ASSERT_EQ(answered->proxy, expected_query.proxy);
    ASSERT_DOUBLE_EQ(answered->cost, expected_query.cost);
    ASSERT_EQ(answered->found_level, expected_query.found_level);
    EXPECT_FALSE(answered->degraded);
  }

  // Global state parity: summed per-node storage and summed meters.
  double cluster_meter = 0.0;
  const std::vector<std::uint64_t> loads =
      coordinator.collect_loads(&cluster_meter);
  const std::vector<std::size_t> expected_loads = reference.load_per_node();
  ASSERT_EQ(loads.size(), expected_loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(loads[i], expected_loads[i]) << "node " << i;
  }
  // Each charge is identical; only the summation grouping differs across
  // shards, so allow for associativity rounding.
  EXPECT_NEAR(cluster_meter, reference.meter().total_distance(),
              1e-6 * (1.0 + reference.meter().total_distance()));

  coordinator.shutdown();
  for (auto& thread : threads) thread.join();
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    EXPECT_EQ(rcs[shard], 0) << "shard " << shard;
  }
}

TEST(NetCluster, TwoShardsMatchSingleProcessRuntime) {
  run_cluster_parity(2, wire::kWireVersion);
}

TEST(NetCluster, ThreeShardsMatchSingleProcessRuntime) {
  run_cluster_parity(3, wire::kWireVersion);
}

TEST(NetCluster, MixedVersionInteropFutureEncoderAmongCurrentPeers) {
  // Odd shards encode at kWireVersionFuture: a version byte and probe
  // fields nobody else has shipped. Current decoders must skip the
  // unknown fields and the cluster must stay bit-exact on answers.
  run_cluster_parity(2, wire::kWireVersionFuture);
}

TEST(NetCluster, TracedRunYieldsConnectedSpanTreesAndMeterParity) {
  // The observability contract (DESIGN.md §12): with a sink installed,
  // every cross-shard walk re-joins into exactly one span tree (single
  // root, no orphans, no duplicate span ids), and the span-summed
  // charged cost equals the single-process CostMeter on the same seed.
  constexpr std::uint32_t kShards = 3;
  constexpr NodeId kStart = 12;
  constexpr ObjectId kObject = 0;
  const Fixture fx;
  const std::vector<WorkloadStep> workload =
      make_workload(fx, kStart, 25, 0xc1u);

  // Reference first, with no sink: its spans reuse the cluster's
  // deterministic trace ids by design, so capturing both runs would
  // manufacture duplicate spans.
  Simulator ref_sim;
  DistributedMot reference(*fx.provider, ref_sim, fx.chain_options);
  reference.publish(kObject, kStart);
  ref_sim.run();
  for (const WorkloadStep& step : workload) {
    reference.move(kObject, step.move_to);
    ref_sim.run();
    reference.query(step.query_from, kObject);
    ref_sim.run();
  }
  const double ref_meter = reference.meter().total_distance();

  // One shared ring for the whole process: worker threads interleave
  // into it (appends are mutex-guarded), which the analyzer must not
  // care about — causality is reconstructed from ids, not order.
  obs::RingBufferSink ring(1 << 16);
  obs::TraceSink* previous = obs::install_trace_sink(&ring);

  ClusterCoordinator coordinator(kShards);
  ASSERT_TRUE(coordinator.open());
  const std::uint16_t port = coordinator.port();
  std::vector<std::thread> threads;
  std::vector<int> rcs(kShards, -1);
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    threads.emplace_back([shard, port, &rcs] {
      const Fixture worker_fx;
      Simulator sim;
      DistributedMot mot(*worker_fx.provider, sim, worker_fx.chain_options);
      WorkerConfig config;
      config.shard = shard;
      config.num_shards = kShards;
      config.coordinator_port = port;
      ShardWorker worker(config, *worker_fx.provider, sim, mot);
      rcs[shard] = worker.run();
    });
  }
  ASSERT_TRUE(coordinator.bootstrap());
  ASSERT_TRUE(coordinator.publish(kObject, kStart));
  for (const WorkloadStep& step : workload) {
    ASSERT_TRUE(coordinator.move(kObject, step.move_to).has_value());
    ASSERT_TRUE(coordinator.query(step.query_from, kObject).has_value());
  }

  // Cluster telemetry rides the same control plane: the merged registry,
  // summed over per-shard labels, must agree with the load-report meter.
  double cluster_meter = 0.0;
  coordinator.collect_loads(&cluster_meter);
  obs::MetricsRegistry merged;
  ASSERT_TRUE(coordinator.collect_telemetry(&merged));
  double telemetry_meter = 0.0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    telemetry_meter +=
        merged.gauge("mot_cost_distance_total",
                     {{"shard", std::to_string(s)}})
            .value();
  }
  EXPECT_NEAR(telemetry_meter, cluster_meter, 1e-6 * (1.0 + cluster_meter));

  coordinator.shutdown();
  for (auto& thread : threads) thread.join();
  obs::install_trace_sink(previous);
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    ASSERT_EQ(rcs[shard], 0) << "shard " << shard;
  }
  ASSERT_EQ(ring.dropped(), 0u) << "ring too small to audit the run";

  // Round-trip through the JSONL text: the same path trace_analyze
  // takes, so the parser is exercised against real emitted lines.
  obs::TraceAnalyzer analyzer;
  std::uint64_t index = 0;
  for (const obs::TraceEvent& event : ring.events()) {
    ASSERT_TRUE(analyzer.add_line(obs::event_to_json(event, index++), 0));
  }
  const obs::TraceReport report = analyzer.report();
  // 1 publish + 25 moves + 25 queries, each one connected tree.
  EXPECT_EQ(report.traces.size(), 1 + 2 * workload.size());
  EXPECT_TRUE(report.all_connected())
      << report.connected << " of " << report.traces.size() << " connected";
  EXPECT_TRUE(report.conserved())
      << report.wire_encodes << " encodes, " << report.wire_decodes
      << " decodes";
  EXPECT_EQ(report.untraced_cost, 0.0)
      << "every charged hop must belong to a span";
  EXPECT_NEAR(report.span_cost, ref_meter, 1e-6 * (1.0 + ref_meter));
  EXPECT_NEAR(cluster_meter, ref_meter, 1e-6 * (1.0 + ref_meter));
}

TEST(NetCluster, BootstrapRejectsDivergentWorlds) {
  // A worker whose world was built differently must be turned away at
  // the handshake, before any node-addressed message can be exchanged.
  const Fixture small(8);
  const Fixture big(10);
  EXPECT_NE(netio::world_fingerprint(*small.provider),
            netio::world_fingerprint(*big.provider));

  ClusterCoordinator coordinator(2);
  ASSERT_TRUE(coordinator.open());
  const std::uint16_t port = coordinator.port();
  std::vector<int> rcs(2, -1);
  std::vector<std::thread> threads;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    threads.emplace_back([shard, port, &small, &big, &rcs] {
      const Fixture& fx = shard == 0 ? small : big;
      Simulator sim;
      DistributedMot mot(*fx.provider, sim, fx.chain_options);
      WorkerConfig config;
      config.shard = shard;
      config.num_shards = 2;
      config.coordinator_port = port;
      ShardWorker worker(config, *fx.provider, sim, mot);
      rcs[shard] = worker.run();
    });
  }
  EXPECT_FALSE(coordinator.bootstrap());
  coordinator.shutdown();  // closes the streams; workers see the hangup
  for (auto& thread : threads) thread.join();
  EXPECT_NE(rcs[0], 0);
  EXPECT_NE(rcs[1], 0);
}

TEST(NetCluster, ShardMapCoversEveryShard) {
  // Round-robin: any window of num_shards consecutive nodes hits every
  // shard exactly once, so each shard owns roles at every overlay level.
  for (std::uint32_t shards = 1; shards <= 8; ++shards) {
    std::vector<int> hit(shards, 0);
    for (NodeId node = 100; node < 100 + shards; ++node) {
      ++hit[netio::shard_of(node, shards)];
    }
    for (std::uint32_t s = 0; s < shards; ++s) EXPECT_EQ(hit[s], 1);
  }
}

}  // namespace
}  // namespace mot
