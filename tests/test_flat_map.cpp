// FlatMap (util/flat_map.hpp): randomized fuzz against an
// std::unordered_map reference model, plus the determinism and
// iteration-order rules the engines rely on.
#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace {

using mot::FlatMap;
using mot::Rng;

TEST(FlatMap, BasicSurface) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.count(7), 0u);

  auto [it, inserted] = map.emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, 70);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(7));
  EXPECT_EQ(map.at(7), 70);

  auto [again, fresh] = map.emplace(7, 99);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(again->second, 70);  // emplace on a present key is a no-op

  map[7] = 71;
  EXPECT_EQ(map.at(7), 71);
  map[8] = 80;  // operator[] default-constructs missing entries
  EXPECT_EQ(map.size(), 2u);

  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(8), 80);

  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(8), map.end());
}

TEST(FlatMap, EraseByIterator) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 10; ++k) map.emplace(k, static_cast<int>(k));
  auto it = map.find(4);
  ASSERT_NE(it, map.end());
  map.erase(it);
  EXPECT_EQ(map.size(), 9u);
  EXPECT_FALSE(map.contains(4));
  for (std::uint64_t k = 0; k < 10; ++k) {
    if (k == 4) continue;
    ASSERT_TRUE(map.contains(k)) << k;
    EXPECT_EQ(map.at(k), static_cast<int>(k));
  }
}

TEST(FlatMap, IterationIsInsertionOrderedUntilErase) {
  FlatMap<std::uint64_t, int> map;
  const std::vector<std::uint64_t> keys = {901, 3, 47, 1024, 12, 500};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    map.emplace(keys[i], static_cast<int>(i));
  }
  std::vector<std::uint64_t> seen;
  for (const auto& [k, v] : map) {
    (void)v;
    seen.push_back(k);
  }
  EXPECT_EQ(seen, keys);

  // Erase swaps the last dense entry into the hole: 3 -> 500.
  map.erase(3);
  seen.clear();
  for (const auto& [k, v] : map) {
    (void)v;
    seen.push_back(k);
  }
  const std::vector<std::uint64_t> expected = {901, 500, 47, 1024, 12};
  EXPECT_EQ(seen, expected);
}

TEST(FlatMap, RandomizedFuzzAgainstUnorderedMap) {
  Rng rng(20260809);
  for (int round = 0; round < 50; ++round) {
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    const std::uint64_t key_space = 1 + rng() % 400;
    const int steps = 800;
    for (int step = 0; step < steps; ++step) {
      const std::uint64_t key = rng() % key_space;
      switch (rng() % 4) {
        case 0: {  // emplace
          const std::uint64_t value = rng();
          const auto [it, inserted] = map.emplace(key, value);
          const auto [ref_it, ref_inserted] = reference.emplace(key, value);
          ASSERT_EQ(inserted, ref_inserted);
          ASSERT_EQ(it->second, ref_it->second);
          break;
        }
        case 1: {  // erase by key
          ASSERT_EQ(map.erase(key), reference.erase(key));
          break;
        }
        case 2: {  // find
          const auto it = map.find(key);
          const auto ref_it = reference.find(key);
          ASSERT_EQ(it == map.end(), ref_it == reference.end());
          if (it != map.end()) {
            ASSERT_EQ(it->first, ref_it->first);
            ASSERT_EQ(it->second, ref_it->second);
          }
          break;
        }
        case 3: {  // mutate through operator[]
          const std::uint64_t value = rng();
          map[key] = value;
          reference[key] = value;
          break;
        }
      }
      ASSERT_EQ(map.size(), reference.size());
    }
    // Full-content sweep: both directions.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> flat(map.begin(),
                                                              map.end());
    std::sort(flat.begin(), flat.end());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ref(
        reference.begin(), reference.end());
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(flat, ref);
  }
}

TEST(FlatMap, DeterministicAcrossInstances) {
  // The same operation sequence must produce the same iteration order in
  // every instance — the engines' replay / any-worker-count contract.
  auto build = [] {
    FlatMap<std::uint64_t, int> map;
    Rng rng(42);
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t key = rng() % 128;
      if (rng() % 3 == 0) {
        map.erase(key);
      } else {
        map.emplace(key, static_cast<int>(step));
      }
    }
    return std::vector<std::pair<std::uint64_t, int>>(map.begin(),
                                                      map.end());
  };
  EXPECT_EQ(build(), build());
}

TEST(FlatMap, GrowthKeepsAllEntries) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  const std::uint64_t n = 10000;
  for (std::uint64_t k = 0; k < n; ++k) map.emplace(k * 2654435761u, k);
  ASSERT_EQ(map.size(), n);
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_EQ(map.at(k * 2654435761u), k);
  }
}

}  // namespace
