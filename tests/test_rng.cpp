#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mot {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, kSamples * 0.01);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, kSamples * 0.3, kSamples * 0.02);
}

TEST(Rng, TruncatedParetoBounds) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.truncated_pareto(1.5, 50);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

TEST(Rng, TruncatedParetoIsHeavyTailedButMostlyShort) {
  Rng rng(31);
  int short_hops = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.truncated_pareto(1.5, 1000) <= 3) ++short_hops;
  }
  // Pareto(1.5): P(X <= 3) ~ 1 - 3^-1.5 ~ 0.81.
  EXPECT_GT(short_hops, 7000);
  EXPECT_LT(short_hops, 9500);
}

TEST(SeedTree, StableAcrossInstances) {
  SeedTree a(99);
  SeedTree b(99);
  EXPECT_EQ(a.seed_for("mis", 0), b.seed_for("mis", 0));
  EXPECT_EQ(a.seed_for("mis", 5), b.seed_for("mis", 5));
}

TEST(SeedTree, DistinctLabelsAndIndicesDiffer) {
  SeedTree tree(99);
  EXPECT_NE(tree.seed_for("mis"), tree.seed_for("trace"));
  EXPECT_NE(tree.seed_for("mis", 0), tree.seed_for("mis", 1));
}

TEST(SeedTree, DifferentRootsDiffer) {
  EXPECT_NE(SeedTree(1).seed_for("x"), SeedTree(2).seed_for("x"));
}

TEST(SeedTree, StreamsAreIndependentRngs) {
  SeedTree tree(5);
  Rng a = tree.stream("a");
  Rng b = tree.stream("b");
  EXPECT_NE(a(), b());
}

}  // namespace
}  // namespace mot
