// Differential fuzzing: long random operation streams executed against a
// trivially-correct position oracle, across every engine. Any divergence
// in answered proxies, any broken chain, or any cost below optimal fails.
#include <gtest/gtest.h>

#include "core/concurrent.hpp"
#include "core/mot.hpp"
#include "expt/experiment.hpp"
#include "graph/generators.hpp"
#include "proto/distributed_mot.hpp"

namespace mot {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, SequentialEngineAgainstPositionOracle) {
  const std::uint64_t seed = GetParam();
  const Network net = build_grid_network(100, seed);
  EdgeRates rates;
  AlgoInstance algo = make_algo(Algo::kMot, net, rates, seed);

  Rng rng(SeedTree(seed).seed_for("fuzz"));
  constexpr std::size_t kObjects = 6;
  std::vector<NodeId> truth(kObjects);
  for (ObjectId o = 0; o < kObjects; ++o) {
    truth[o] = static_cast<NodeId>(rng.below(net.num_nodes()));
    algo.tracker->publish(o, truth[o]);
  }

  for (int step = 0; step < 600; ++step) {
    const auto object = static_cast<ObjectId>(rng.below(kObjects));
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {  // random-walk move
      const auto neighbors = net.graph().neighbors(truth[object]);
      const NodeId to = neighbors[rng.below(neighbors.size())].to;
      const MoveResult result = algo.tracker->move(object, to);
      ASSERT_GE(result.cost,
                net.oracle->distance(truth[object], to) - 1e-9);
      truth[object] = to;
    } else if (action == 1) {  // long-range move
      const auto to = static_cast<NodeId>(rng.below(net.num_nodes()));
      algo.tracker->move(object, to);
      truth[object] = to;
    } else {  // query from anywhere
      const auto from = static_cast<NodeId>(rng.below(net.num_nodes()));
      const QueryResult result = algo.tracker->query(from, object);
      ASSERT_TRUE(result.found);
      ASSERT_EQ(result.proxy, truth[object]) << "step " << step;
      ASSERT_GE(result.cost,
                net.oracle->distance(from, truth[object]) - 1e-9);
    }
    if (step % 97 == 0) algo.tracker->validate_all();
  }
  algo.tracker->validate_all();
}

TEST_P(FuzzTest, ConcurrentEngineAgainstPositionOracle) {
  const std::uint64_t seed = GetParam();
  const Network net = build_grid_network(64, seed);
  EdgeRates rates;
  const AlgoInstance algo = make_algo(Algo::kMot, net, rates, seed);

  Simulator sim;
  ConcurrentEngine engine(*algo.provider, sim, algo.chain_options);
  Rng rng(SeedTree(seed).seed_for("fuzz-conc"));
  constexpr std::size_t kObjects = 5;
  std::vector<NodeId> truth(kObjects);
  for (ObjectId o = 0; o < kObjects; ++o) {
    truth[o] = static_cast<NodeId>(rng.below(net.num_nodes()));
    engine.publish(o, truth[o]);
  }

  // Bursts of overlapping operations, drained between bursts.
  for (int burst = 0; burst < 40; ++burst) {
    for (int k = 0; k < 8; ++k) {
      const auto object = static_cast<ObjectId>(rng.below(kObjects));
      if (rng.chance(0.7)) {
        const auto neighbors = net.graph().neighbors(truth[object]);
        const NodeId to = neighbors[rng.below(neighbors.size())].to;
        engine.start_move(object, to, {});
        truth[object] = to;
      } else {
        const auto from = static_cast<NodeId>(rng.below(net.num_nodes()));
        const NodeId expected = truth[object];  // position at issue time
        engine.start_query(from, object,
                           [expected, object](const QueryResult& r) {
                             ASSERT_TRUE(r.found);
                             // The query chases: it must answer with a
                             // position the object held at-or-after issue;
                             // at burst drain that is the latest one.
                             (void)expected;
                             (void)object;
                           });
      }
    }
    sim.run();
    ASSERT_EQ(engine.inflight_operations(), 0u);
    engine.validate_quiescent();
    for (ObjectId o = 0; o < kObjects; ++o) {
      ASSERT_EQ(engine.physical_position(o), truth[o]);
    }
  }
}

TEST_P(FuzzTest, DistributedRuntimeAgainstPositionOracle) {
  const std::uint64_t seed = GetParam();
  const Network net = build_grid_network(64, seed);
  EdgeRates rates;
  const AlgoInstance algo = make_algo(Algo::kMot, net, rates, seed);

  Simulator sim;
  proto::DistributedMot runtime(*algo.provider, sim, algo.chain_options);
  Rng rng(SeedTree(seed).seed_for("fuzz-proto"));
  constexpr std::size_t kObjects = 4;
  std::vector<NodeId> truth(kObjects);
  for (ObjectId o = 0; o < kObjects; ++o) {
    truth[o] = static_cast<NodeId>(rng.below(net.num_nodes()));
    runtime.publish(o, truth[o]);
  }
  sim.run();

  for (int step = 0; step < 250; ++step) {
    const auto object = static_cast<ObjectId>(rng.below(kObjects));
    if (rng.chance(0.7)) {
      const auto neighbors = net.graph().neighbors(truth[object]);
      const NodeId to = neighbors[rng.below(neighbors.size())].to;
      runtime.move(object, to, {});
      truth[object] = to;
    } else {
      const auto from = static_cast<NodeId>(rng.below(net.num_nodes()));
      NodeId answered = kInvalidNode;
      runtime.query(from, object,
                    [&](const QueryResult& r) { answered = r.proxy; });
      sim.run();
      ASSERT_EQ(answered, truth[object]) << "step " << step;
    }
    sim.run();  // one-by-one: drain before the next operation
  }
  runtime.validate_quiescent();
}

TEST_P(FuzzTest, TreeBaselinesAgainstPositionOracle) {
  const std::uint64_t seed = GetParam();
  const Network net = build_grid_network(81, seed);
  Rng trace_rng(SeedTree(seed).seed_for("rates"));
  TraceParams tp;
  tp.num_objects = 4;
  tp.moves_per_object = 30;
  const MovementTrace warmup = generate_trace(net.graph(), tp, trace_rng);
  const EdgeRates rates = warmup.estimate_rates();

  for (const Algo baseline : {Algo::kStun, Algo::kDat, Algo::kZdat}) {
    AlgoInstance algo = make_algo(baseline, net, rates, seed);
    Rng rng(SeedTree(seed).seed_for("fuzz-tree"));
    std::vector<NodeId> truth(4);
    for (ObjectId o = 0; o < 4; ++o) {
      truth[o] = static_cast<NodeId>(rng.below(net.num_nodes()));
      algo.tracker->publish(o, truth[o]);
    }
    for (int step = 0; step < 300; ++step) {
      const auto object = static_cast<ObjectId>(rng.below(4u));
      if (rng.chance(0.6)) {
        const auto to = static_cast<NodeId>(rng.below(net.num_nodes()));
        algo.tracker->move(object, to);
        truth[object] = to;
      } else {
        const auto from = static_cast<NodeId>(rng.below(net.num_nodes()));
        ASSERT_EQ(algo.tracker->query(from, object).proxy, truth[object])
            << algo.name << " step " << step;
      }
    }
    algo.tracker->validate_all();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mot
