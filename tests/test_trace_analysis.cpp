// Offline observability: the trace JSONL parser, the span-tree
// analyzer behind bench/trace_analyze, the crash flight recorder, and
// the metric snapshot/absorb bridge that TelemetryReport frames ride.
#include "obs/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace mot::obs {
namespace {

// --- parse_trace_line -----------------------------------------------------

TEST(TraceParse, RoundTripsWhatEventToJsonEmits) {
  const TraceEvent event{.type = Ev::kMsgSend,
                         .t = 2.5,
                         .object = 7,
                         .from = 3,
                         .to = 9,
                         .level = 4,
                         .dist = 1.25,
                         .charged = 1.25,
                         .aux = 42,
                         .trace = 0xabcdef0012345678ULL,
                         .span = 11,
                         .parent = 10,
                         .label = "insert"};
  ParsedEvent parsed;
  ASSERT_TRUE(parse_trace_line(event_to_json(event, 5), &parsed));
  EXPECT_EQ(parsed.ev, "msg_send");
  EXPECT_DOUBLE_EQ(parsed.t, 2.5);
  EXPECT_EQ(parsed.object, 7u);
  EXPECT_EQ(parsed.from, 3u);
  EXPECT_EQ(parsed.to, 9u);
  EXPECT_EQ(parsed.level, 4);
  EXPECT_DOUBLE_EQ(parsed.dist, 1.25);
  EXPECT_DOUBLE_EQ(parsed.charged, 1.25);
  EXPECT_EQ(parsed.aux, 42u);
  EXPECT_EQ(parsed.trace, 0xabcdef0012345678ULL);
  EXPECT_EQ(parsed.span, 11u);
  EXPECT_EQ(parsed.parent, 10u);
  EXPECT_EQ(parsed.label, "insert");
}

TEST(TraceParse, OmittedFieldsKeepTheirDefaults) {
  // event_to_json omits unset fields; the parser must restore the same
  // defaults TraceEvent carries, including the all-important trace=0.
  ParsedEvent parsed;
  ASSERT_TRUE(parse_trace_line(R"({"i":0,"ev":"span_begin"})", &parsed));
  EXPECT_EQ(parsed.ev, "span_begin");
  EXPECT_EQ(parsed.trace, 0u);
  EXPECT_EQ(parsed.span, 0u);
  EXPECT_EQ(parsed.parent, 0u);
  EXPECT_EQ(parsed.object, kNoObject);
  EXPECT_DOUBLE_EQ(parsed.charged, 0.0);
}

TEST(TraceParse, AcceptsEscapesAndRejectsMalformedLines) {
  ParsedEvent parsed;
  ASSERT_TRUE(parse_trace_line(
      R"({"ev":"msg_send","label":"a\"b\\cA\n"})", &parsed));
  EXPECT_EQ(parsed.label, "a\"b\\cA\n");

  EXPECT_FALSE(parse_trace_line("", &parsed));
  EXPECT_FALSE(parse_trace_line("not json", &parsed));
  EXPECT_FALSE(parse_trace_line(R"(["ev","msg_send"])", &parsed));
  EXPECT_FALSE(parse_trace_line(R"({"ev":"x")", &parsed));       // unclosed
  EXPECT_FALSE(parse_trace_line(R"({"ev":"x"} tail)", &parsed)); // garbage
  EXPECT_FALSE(parse_trace_line(R"({"t":12..5,"ev":"x"})", &parsed));
}

// --- TraceAnalyzer --------------------------------------------------------

ParsedEvent span(std::uint64_t trace, std::uint64_t id, std::uint64_t parent,
                 double charged = 0.0, int shard = 0) {
  ParsedEvent event;
  event.ev = "msg_send";
  event.trace = trace;
  event.span = id;
  event.parent = parent;
  event.charged = charged;
  event.shard = shard;
  event.label = "insert";
  return event;
}

TEST(TraceAnalysis, ConnectedTreeWithCriticalPathAndCost) {
  TraceAnalyzer analyzer;
  // root(1) -> 2 -> 3 -> 4 plus a side branch 1 -> 5: the critical
  // path is the four-span chain.
  analyzer.add_event(span(0xbeef, 1, 0, 1.0, 0));
  analyzer.add_event(span(0xbeef, 2, 1, 2.0, 1));
  analyzer.add_event(span(0xbeef, 3, 2, 4.0, 0));
  analyzer.add_event(span(0xbeef, 4, 3, 8.0, 1));
  analyzer.add_event(span(0xbeef, 5, 1, 16.0, 2));
  const TraceReport report = analyzer.report();
  ASSERT_EQ(report.traces.size(), 1u);
  const TraceSummary& trace = report.traces[0];
  EXPECT_TRUE(trace.connected());
  EXPECT_EQ(trace.spans, 5u);
  EXPECT_EQ(trace.roots, 1u);
  EXPECT_EQ(trace.critical_path, 4u);
  EXPECT_EQ(trace.shards, 3u);
  EXPECT_DOUBLE_EQ(trace.cost, 31.0);
  EXPECT_EQ(trace.root_label, "insert");
  EXPECT_TRUE(report.all_connected());
  EXPECT_DOUBLE_EQ(report.span_cost, 31.0);
}

TEST(TraceAnalysis, FlagsOrphansMultipleRootsAndDuplicates) {
  TraceAnalyzer analyzer;
  analyzer.add_event(span(1, 1, 0));
  analyzer.add_event(span(1, 2, 99));  // orphan: parent 99 never seen
  analyzer.add_event(span(2, 1, 0));
  analyzer.add_event(span(2, 2, 0));   // second root
  analyzer.add_event(span(3, 1, 0));
  analyzer.add_event(span(3, 1, 1));   // duplicate span id
  const TraceReport report = analyzer.report();
  ASSERT_EQ(report.traces.size(), 3u);
  EXPECT_EQ(report.traces[0].orphans, 1u);
  EXPECT_EQ(report.traces[1].roots, 2u);
  EXPECT_EQ(report.traces[2].duplicate_spans, 1u);
  for (const TraceSummary& trace : report.traces) {
    EXPECT_FALSE(trace.connected());
  }
  EXPECT_EQ(report.connected, 0u);
  EXPECT_FALSE(report.all_connected());
}

TEST(TraceAnalysis, TracksConservationAndUntracedCost) {
  TraceAnalyzer analyzer;
  ParsedEvent encode;
  encode.ev = "wire_encode";
  analyzer.add_event(encode);
  analyzer.add_event(encode);
  ParsedEvent decode;
  decode.ev = "wire_decode";
  analyzer.add_event(decode);
  ParsedEvent loose;
  loose.ev = "msg_send";
  loose.charged = 3.5;  // charged but no trace id: accounted separately
  analyzer.add_event(loose);
  const TraceReport report = analyzer.report();
  EXPECT_EQ(report.wire_encodes, 2u);
  EXPECT_EQ(report.wire_decodes, 1u);
  EXPECT_FALSE(report.conserved());
  EXPECT_DOUBLE_EQ(report.untraced_cost, 3.5);
  EXPECT_DOUBLE_EQ(report.span_cost, 0.0);
}

TEST(TraceAnalysis, SurvivesAParentCycleWithoutSpinning) {
  // Corrupt input where spans point at each other must terminate, not
  // hang the analyzer (the chain walk is bounded by the span count).
  TraceAnalyzer analyzer;
  analyzer.add_event(span(7, 1, 2));
  analyzer.add_event(span(7, 2, 1));
  const TraceReport report = analyzer.report();
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_FALSE(report.traces[0].connected());
}

TEST(TraceAnalysis, ReadsFilesAndCountsParseErrors) {
  const std::string path = "trace_analysis_scratch.jsonl";
  {
    std::ofstream out(path);
    out << event_to_json({.type = Ev::kMsgSend,
                          .charged = 2.0,
                          .trace = 5,
                          .span = 1,
                          .label = "insert"},
                         0)
        << "\n";
    out << "this line is not json\n";
    out << event_to_json({.type = Ev::kMsgSend,
                          .charged = 3.0,
                          .trace = 5,
                          .span = 2,
                          .parent = 1,
                          .label = "insert"},
                         1)
        << "\n";
  }
  TraceAnalyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(path, 0));
  EXPECT_EQ(analyzer.parse_errors(), 1u);
  const TraceReport report = analyzer.report();
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_TRUE(report.traces[0].connected());
  EXPECT_DOUBLE_EQ(report.traces[0].cost, 5.0);
  EXPECT_FALSE(analyzer.add_file("no/such/file.jsonl", 1));
  std::remove(path.c_str());
}

// --- FlightRecorder -------------------------------------------------------

TEST(FlightRecorder, DumpsTheRingTailOnceAndStaysDecodable) {
  const std::string path = "flight_scratch.jsonl";
  std::remove(path.c_str());
  FlightRecorder recorder(4, path);
  RingBufferSink chained(64);
  recorder.set_chain(&chained);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.on_event({.type = Ev::kMsgSend, .object = i, .label = "x"});
  }
  EXPECT_EQ(recorder.events_seen(), 10u);
  EXPECT_EQ(chained.total_events(), 10u) << "chain must see every event";
  EXPECT_FALSE(recorder.dumped());

  ASSERT_TRUE(recorder.dump("test-reason"));
  EXPECT_TRUE(recorder.dumped());
  EXPECT_EQ(recorder.events_dumped(), 4u);  // capacity bounds the tail
  EXPECT_FALSE(recorder.dump("second")) << "first dump wins";

  std::ifstream in(path);
  std::string line;
  std::vector<ParsedEvent> parsed;
  while (std::getline(in, line)) {
    ParsedEvent event;
    ASSERT_TRUE(parse_trace_line(line, &event)) << line;
    parsed.push_back(event);
  }
  ASSERT_EQ(parsed.size(), 5u);  // header + 4 retained events
  EXPECT_EQ(parsed[0].ev, "flight_dump");
  EXPECT_EQ(parsed[0].label, "test-reason");
  EXPECT_EQ(parsed[0].aux, 4u);  // retained-event count rides in aux
  // Tail of the stream, oldest first: objects 6..9 survived.
  for (std::size_t i = 1; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].object, 5 + i);
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, GlobalInstallHookRoundTrips) {
  EXPECT_EQ(flight_recorder(), nullptr);
  FlightRecorder recorder(8, "unused.jsonl");
  FlightRecorder* previous = install_flight_recorder(&recorder);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(flight_recorder(), &recorder);
  EXPECT_EQ(install_flight_recorder(nullptr), &recorder);
  EXPECT_EQ(flight_recorder(), nullptr);
}

// --- MetricSnapshot / absorb ----------------------------------------------

TEST(MetricSnapshot, SnapshotAbsorbRoundTripsEveryKind) {
  MetricsRegistry source;
  source.counter("requests", {{"kind", "move"}}).increment(7);
  source.gauge("meter").set(2.5);
  FixedHistogram& histogram =
      source.histogram("latency", {1.0, 10.0});
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);

  const std::vector<MetricSnapshot> snapshot = source.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);

  // Absorb twice under different shard labels: instruments accumulate
  // per label set, the way the coordinator merges worker reports.
  MetricsRegistry merged;
  for (const MetricSnapshot& metric : snapshot) {
    merged.absorb(metric, {{"shard", "0"}});
    merged.absorb(metric, {{"shard", "1"}});
    merged.absorb(metric, {{"shard", "1"}});
  }
  EXPECT_EQ(
      merged.counter("requests", {{"kind", "move"}, {"shard", "0"}}).value(),
      7u);
  EXPECT_EQ(
      merged.counter("requests", {{"kind", "move"}, {"shard", "1"}}).value(),
      14u);
  EXPECT_DOUBLE_EQ(merged.gauge("meter", {{"shard", "0"}}).value(), 2.5);
  EXPECT_DOUBLE_EQ(merged.gauge("meter", {{"shard", "1"}}).value(), 5.0);
  const FixedHistogram& absorbed =
      merged.histogram("latency", {1.0, 10.0}, {{"shard", "1"}});
  EXPECT_EQ(absorbed.count(), 6u);
  EXPECT_DOUBLE_EQ(absorbed.sum(), 111.0);
  const std::vector<std::uint64_t> expected = {2, 2, 2};
  EXPECT_EQ(absorbed.bucket_counts(), expected);

  // The merged registry snapshots back out identically shaped metrics.
  MetricsRegistry again;
  for (const MetricSnapshot& metric : merged.snapshot()) {
    again.absorb(metric);
  }
  EXPECT_EQ(again.snapshot(), merged.snapshot());
}

}  // namespace
}  // namespace mot::obs
