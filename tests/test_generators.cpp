#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/shortest_path.hpp"

namespace mot {
namespace {

TEST(Generators, GridShape) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_positions());
  EXPECT_TRUE(has_unit_weights(g));
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(Generators, Grid8HasDiagonals) {
  const Graph g = make_grid8(3, 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 4), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, TorusIsRegular) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, RingAndPath) {
  const Graph ring = make_ring(10);
  EXPECT_EQ(ring.num_edges(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(ring.degree(v), 2u);
  EXPECT_TRUE(ring.has_positions());

  const Graph path = make_path(10);
  EXPECT_EQ(path.num_edges(), 9u);
  EXPECT_EQ(path.degree(0), 1u);
  EXPECT_EQ(path.degree(5), 2u);
}

TEST(Generators, StarAndComplete) {
  const Graph star = make_star(6);
  EXPECT_EQ(star.degree(0), 5u);
  EXPECT_EQ(star.degree(3), 1u);

  const Graph complete = make_complete(5);
  EXPECT_EQ(complete.num_edges(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(complete.degree(v), 4u);
}

TEST(Generators, BalancedTree) {
  const Graph tree = make_balanced_tree(7, 2);
  EXPECT_EQ(tree.num_edges(), 6u);
  EXPECT_TRUE(tree.is_connected());
  EXPECT_EQ(tree.degree(0), 2u);  // root has children 1, 2
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(3);
  const Graph tree = make_random_tree(50, rng);
  EXPECT_EQ(tree.num_edges(), 49u);
  EXPECT_TRUE(tree.is_connected());
}

TEST(Generators, RandomGeometricConnectedNormalized) {
  Rng rng(7);
  const Graph g = make_random_geometric(60, 10.0, 2.5, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_positions());
  EXPECT_NEAR(g.min_edge_weight(), 1.0, 1e-9);
}

TEST(Generators, ConnectedRandomHitsTargetDegree) {
  Rng rng(11);
  const Graph g = make_connected_random(100, 4.0, 8.0, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NEAR(static_cast<double>(g.num_edges()) * 2.0 / 100.0, 4.0, 0.5);
  EXPECT_NEAR(g.min_edge_weight(), 1.0, 1e-9);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(5, 10);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_TRUE(g.is_connected());
  // Clique part: degree 4 within the clique (+1 for the tail attachment).
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(4), 5u);
  // Tail end: degree 1.
  EXPECT_EQ(g.degree(14), 1u);
}

TEST(Generators, GridPositionsMatchCoordinates) {
  const Graph g = make_grid(2, 3);
  EXPECT_DOUBLE_EQ(g.position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(g.position(0).y, 0.0);
  EXPECT_DOUBLE_EQ(g.position(5).x, 2.0);
  EXPECT_DOUBLE_EQ(g.position(5).y, 1.0);
}

TEST(Generators, SingleRowGridIsPath) {
  const Graph g = make_grid(1, 5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

}  // namespace
}  // namespace mot
