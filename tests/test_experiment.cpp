#include "expt/experiment.hpp"

#include <gtest/gtest.h>

#include "expt/fig_runners.hpp"

namespace mot {
namespace {

TEST(BuildGridNetwork, ProducesSquareGridWithHierarchy) {
  const Network net = build_grid_network(64, 3);
  EXPECT_EQ(net.num_nodes(), 64u);
  EXPECT_TRUE(net.graph().is_connected());
  EXPECT_GE(net.hierarchy->height(), 2);
  EXPECT_LT(net.sink, 64u);
}

TEST(BuildGridNetwork, RoundsToNearestSquare) {
  EXPECT_EQ(build_grid_network(100, 1).num_nodes(), 100u);
  EXPECT_EQ(build_grid_network(10, 1).num_nodes(), 9u);  // 3x3
}

TEST(MakeAlgo, AllAlgorithmsConstructAndTrack) {
  const Network net = build_grid_network(36, 5);
  TraceParams tp;
  tp.num_objects = 5;
  tp.moves_per_object = 20;
  Rng rng(7);
  const MovementTrace trace = generate_trace(net.graph(), tp, rng);
  const EdgeRates rates = trace.estimate_rates();

  for (const Algo algo :
       {Algo::kMot, Algo::kMotLoadBalanced, Algo::kStun, Algo::kDat,
        Algo::kZdat, Algo::kZdatShortcuts}) {
    AlgoInstance instance = make_algo(algo, net, rates, 5);
    EXPECT_FALSE(instance.name.empty());
    publish_all(*instance.tracker, trace);
    const CostRatioAccumulator moves =
        run_moves(*instance.tracker, *net.oracle, trace.moves);
    EXPECT_GE(moves.aggregate_ratio(), 1.0) << instance.name;
    instance.tracker->load_per_node();
  }
}

TEST(RunQueries, MatchesProxiesAndCountsOps) {
  const Network net = build_grid_network(36, 5);
  TraceParams tp;
  tp.num_objects = 4;
  tp.moves_per_object = 15;
  Rng rng(9);
  const MovementTrace trace = generate_trace(net.graph(), tp, rng);
  const EdgeRates rates = trace.estimate_rates();
  AlgoInstance algo = make_algo(Algo::kMot, net, rates, 5);
  publish_all(*algo.tracker, trace);
  run_moves(*algo.tracker, *net.oracle, trace.moves);

  Rng qrng(11);
  const auto queries = generate_queries(36, 4, 30, qrng);
  const CostRatioAccumulator result =
      run_queries(*algo.tracker, *net.oracle, queries);
  EXPECT_EQ(result.count() + result.zero_optimal_count(), 30u);
  EXPECT_GE(result.aggregate_ratio(), 1.0);
}

TEST(Integration, MotBeatsStunOnMaintenance) {
  // The paper's headline comparison, at test scale.
  const Network net = build_grid_network(256, 7);
  TraceParams tp;
  tp.num_objects = 30;
  tp.moves_per_object = 40;
  Rng rng(13);
  const MovementTrace trace = generate_trace(net.graph(), tp, rng);
  const EdgeRates rates = trace.estimate_rates();

  AlgoInstance mot = make_algo(Algo::kMot, net, rates, 7);
  AlgoInstance stun = make_algo(Algo::kStun, net, rates, 7);
  publish_all(*mot.tracker, trace);
  publish_all(*stun.tracker, trace);
  const double mot_ratio =
      run_moves(*mot.tracker, *net.oracle, trace.moves).aggregate_ratio();
  const double stun_ratio =
      run_moves(*stun.tracker, *net.oracle, trace.moves).aggregate_ratio();
  EXPECT_LT(mot_ratio, stun_ratio);
}

TEST(Integration, MotLoadFlatterThanBaselines) {
  const Network net = build_grid_network(256, 9);
  TraceParams tp;
  tp.num_objects = 50;
  tp.moves_per_object = 0;
  Rng rng(15);
  const MovementTrace trace = generate_trace(net.graph(), tp, rng);
  const EdgeRates rates = trace.estimate_rates();

  AlgoInstance lb = make_algo(Algo::kMotLoadBalanced, net, rates, 9);
  AlgoInstance stun = make_algo(Algo::kStun, net, rates, 9);
  publish_all(*lb.tracker, trace);
  publish_all(*stun.tracker, trace);
  const LoadSummary lb_load = summarize_load(lb.tracker->load_per_node());
  const LoadSummary stun_load =
      summarize_load(stun.tracker->load_per_node());
  EXPECT_LT(lb_load.max, stun_load.max);
  EXPECT_LT(lb_load.imbalance, stun_load.imbalance);
}

TEST(Integration, QueryRatioFlatAcrossSizes) {
  // Theorem 4.11's shape: MOT's query cost ratio does not blow up with n.
  double small_ratio = 0.0;
  double large_ratio = 0.0;
  for (const std::size_t size : {64u, 400u}) {
    const Network net = build_grid_network(size, 11);
    TraceParams tp;
    tp.num_objects = 20;
    tp.moves_per_object = 30;
    Rng rng(17);
    const MovementTrace trace = generate_trace(net.graph(), tp, rng);
    const EdgeRates rates = trace.estimate_rates();
    AlgoInstance mot = make_algo(Algo::kMot, net, rates, 11);
    publish_all(*mot.tracker, trace);
    run_moves(*mot.tracker, *net.oracle, trace.moves);
    Rng qrng(19);
    const auto queries = generate_queries(net.num_nodes(), 20, 100, qrng);
    const double ratio =
        run_queries(*mot.tracker, *net.oracle, queries).aggregate_ratio();
    (size == 64 ? small_ratio : large_ratio) = ratio;
  }
  EXPECT_LT(large_ratio, 3.0 * small_ratio);  // flat up to noise
}

TEST(FigRunners, MaintenanceSweepTableShape) {
  SweepParams params;
  params.num_objects = 5;
  params.moves_per_object = 10;
  params.num_seeds = 1;
  params.sizes = {16, 36};
  params.algos = {Algo::kMot, Algo::kZdat};
  const Table table = run_maintenance_sweep(params);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 3u);  // nodes + 2 algos
  EXPECT_EQ(table.at(0, 0), "16");
  EXPECT_GT(std::stod(table.at(0, 1)), 0.0);
}

TEST(FigRunners, QuerySweepConcurrentRuns) {
  SweepParams params;
  params.num_objects = 5;
  params.moves_per_object = 10;
  params.num_seeds = 1;
  params.concurrent = true;
  params.sizes = {16};
  params.algos = {Algo::kMot};
  const Table table = run_query_sweep(params);
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_GT(std::stod(table.at(0, 1)), 0.0);
}

TEST(FigRunners, LoadFigureHasThreeRows) {
  LoadFigureParams params;
  params.num_nodes = 64;
  params.num_objects = 10;
  params.moves_per_object = 5;
  params.num_seeds = 1;
  const Table table = run_load_figure(params);
  EXPECT_EQ(table.num_rows(), 3u);  // MOT-LB, MOT, baseline
  EXPECT_EQ(table.at(0, 0), "MOT-LB");
}

TEST(PaperGridSizes, CoversPaperRange) {
  const auto full = paper_grid_sizes(true);
  EXPECT_EQ(full.front(), 9u);
  EXPECT_EQ(full.back(), 1024u);
  const auto quick = paper_grid_sizes(false);
  EXPECT_EQ(quick.back(), 1024u);
}

}  // namespace
}  // namespace mot
