// The distributed (message-passing) runtime must behave exactly like the
// verified centralized engine under one-by-one execution: identical
// proxies, identical per-operation communication costs, identical
// detection-list placement — while provably touching only local state.
#include "proto/distributed_mot.hpp"

#include <gtest/gtest.h>

#include "baselines/tree_tracker.hpp"
#include "net/router.hpp"
#include "core/mot.hpp"
#include "expt/experiment.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "workload/mobility.hpp"

namespace mot {
namespace {

using proto::DistributedMot;

struct Fixture {
  explicit Fixture(std::size_t side = 8, bool special_parents = true)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = special_parents;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

TEST(DistributedMot, PublishPlacesEntriesLikeCentralized) {
  const Fixture fx;
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  central.publish(0, 13);

  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.publish(0, 13);
  sim.run();
  dist.validate_quiescent();

  // Identical storage placement per sensor.
  EXPECT_EQ(dist.load_per_node(), central.load_per_node());
}

TEST(DistributedMot, MoveCostParityWithCentralizedEngine) {
  const Fixture fx;
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);

  central.publish(0, 0);
  dist.publish(0, 0);
  sim.run();

  Rng rng(3);
  NodeId at = 0;
  for (int i = 0; i < 120; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    const MoveResult expected = central.move(0, at);
    MoveResult actual;
    dist.move(0, at, [&](const MoveResult& r) { actual = r; });
    sim.run();
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost) << "step " << i;
    ASSERT_EQ(actual.peak_level, expected.peak_level) << "step " << i;
  }
  dist.validate_quiescent();
  EXPECT_EQ(dist.proxy_of(0), central.proxy_of(0));
  EXPECT_EQ(dist.load_per_node(), central.load_per_node());
}

TEST(DistributedMot, QueryCostParityWithCentralizedEngine) {
  const Fixture fx;
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);

  central.publish(0, 5);
  dist.publish(0, 5);
  sim.run();
  Rng rng(9);
  NodeId at = 5;
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    central.move(0, at);
    dist.move(0, at, {});
    sim.run();
  }

  for (NodeId from = 0; from < fx.graph.num_nodes(); from += 3) {
    const QueryResult expected = central.query(from, 0);
    QueryResult actual;
    dist.query(from, 0, [&](const QueryResult& r) { actual = r; });
    sim.run();
    ASSERT_TRUE(actual.found);
    ASSERT_EQ(actual.proxy, expected.proxy) << "from " << from;
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost) << "from " << from;
    ASSERT_EQ(actual.found_level, expected.found_level) << "from " << from;
  }
}

TEST(DistributedMot, ParityWithoutSpecialParents) {
  const Fixture fx(8, /*special_parents=*/false);
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  central.publish(0, 10);
  dist.publish(0, 10);
  sim.run();
  Rng rng(21);
  NodeId at = 10;
  for (int i = 0; i < 60; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    const MoveResult expected = central.move(0, at);
    MoveResult actual;
    dist.move(0, at, [&](const MoveResult& r) { actual = r; });
    sim.run();
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost);
  }
  EXPECT_EQ(dist.load_per_node(), central.load_per_node());
}

TEST(DistributedMot, MoveToCurrentProxyIsFree) {
  const Fixture fx;
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.publish(0, 4);
  sim.run();
  MoveResult result{.cost = -1.0, .peak_level = -1};
  dist.move(0, 4, [&](const MoveResult& r) { result = r; });
  sim.run();
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(DistributedMot, QueryOverlappingMoveGetsRedirected) {
  const Fixture fx;
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.publish(0, 0);
  sim.run();
  // Start a move across the grid and a query aimed at the old proxy
  // before the delete reaches it.
  dist.move(0, 63, {});
  QueryResult result;
  dist.query(1, 0, [&](const QueryResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 63u);
  dist.validate_quiescent();
  const auto& stats = dist.stats();
  EXPECT_EQ(stats.moves_completed, 1u);
  EXPECT_EQ(stats.queries_completed, 1u);
}

TEST(DistributedMot, MessageCountsAreReasonable) {
  const Fixture fx;
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.publish(0, 0);
  sim.run();
  const std::uint64_t after_publish = dist.stats().messages_sent;
  // Publish: one message per chain entry plus SDL registrations.
  EXPECT_GE(after_publish,
            static_cast<std::uint64_t>(fx.hierarchy->height()));
  EXPECT_LE(after_publish,
            4u * static_cast<std::uint64_t>(fx.hierarchy->height()) + 4u);

  dist.move(0, 1, {});
  sim.run();
  EXPECT_GT(dist.stats().messages_sent, after_publish);
  dist.validate_quiescent();
}

TEST(DistributedMot, DeliveryTraceRecordsWire) {
  const Fixture fx;
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.record_deliveries(true);
  dist.publish(0, 9);
  sim.run();
  ASSERT_FALSE(dist.deliveries().empty());
  // First delivery is the publish injected at the proxy itself.
  const proto::Delivery& first = dist.deliveries().front();
  EXPECT_EQ(first.message.type, proto::MsgType::kPublish);
  EXPECT_EQ(first.to, 9u);
  // Distances on the wire match the oracle.
  for (const proto::Delivery& d : dist.deliveries()) {
    EXPECT_DOUBLE_EQ(d.distance, d.from == d.to
                                     ? 0.0
                                     : fx.oracle->distance(d.from, d.to));
  }
}

TEST(DistributedMot, WorksOverTreeProviders) {
  const Graph graph = make_grid(6, 6);
  const CachedDistanceOracle oracle(graph);
  const NodeId sink = choose_sink(graph);
  EdgeRates rates;
  SpanningTree tree = build_dat(graph, rates, sink);
  SpanningTree tree_copy = tree;
  TreePathProvider provider(oracle, std::move(tree));
  TreePathProvider provider_copy(oracle, std::move(tree_copy));
  ChainOptions options;

  ChainTracker central("seq", provider_copy, options);
  Simulator sim;
  DistributedMot dist(provider, sim, options);
  central.publish(0, 0);
  dist.publish(0, 0);
  sim.run();
  Rng rng(31);
  NodeId at = 0;
  for (int i = 0; i < 50; ++i) {
    const auto neighbors = graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    const MoveResult expected = central.move(0, at);
    MoveResult actual;
    dist.move(0, at, [&](const MoveResult& r) { actual = r; });
    sim.run();
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost) << "step " << i;
  }
  dist.validate_quiescent();
  EXPECT_EQ(dist.proxy_of(0), central.proxy_of(0));
}

TEST(DistributedMot, MultipleObjectsIndependent) {
  const Fixture fx;
  Simulator sim;
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  for (ObjectId o = 0; o < 10; ++o) {
    dist.publish(o, static_cast<NodeId>(o * 6));
  }
  sim.run();
  // Concurrent moves of DIFFERENT objects are fine (the one-by-one rule
  // is per object).
  for (ObjectId o = 0; o < 10; ++o) {
    dist.move(o, static_cast<NodeId>(o * 6 + 1), {});
  }
  sim.run();
  dist.validate_quiescent();
  for (ObjectId o = 0; o < 10; ++o) {
    EXPECT_EQ(dist.proxy_of(o), static_cast<NodeId>(o * 6 + 1));
  }
}

TEST(DistributedMot, PhysicalRoutingPreservesCostAndCountsHops) {
  // Special parents off: every message is charged, so on a unit grid the
  // metered distance equals the number of forwarded edges exactly.
  const Fixture fx(8, /*special_parents=*/false);
  const ShortestPathRouter router(fx.graph);

  Simulator sim_a;
  DistributedMot plain(*fx.provider, sim_a, fx.chain_options);
  Simulator sim_b;
  DistributedMot routed(*fx.provider, sim_b, fx.chain_options);
  routed.use_router(&router);

  plain.publish(0, 0);
  routed.publish(0, 0);
  sim_a.run();
  sim_b.run();
  // The publish climb is already forwarded edge by edge.
  EXPECT_GT(routed.stats().physical_hops, 0u);
  Rng rng(41);
  NodeId at = 0;
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    MoveResult a;
    MoveResult b;
    plain.move(0, at, [&](const MoveResult& r) { a = r; });
    routed.move(0, at, [&](const MoveResult& r) { b = r; });
    sim_a.run();
    sim_b.run();
    // Hop-by-hop forwarding changes nothing about the charged cost.
    ASSERT_DOUBLE_EQ(a.cost, b.cost);
  }
  // On a unit grid, total forwarded edges == total distance traveled, so
  // physical hops must be at least the message count minus self-sends and
  // exactly the metered distance.
  EXPECT_DOUBLE_EQ(static_cast<double>(routed.stats().physical_hops),
                   routed.meter().total_distance());
}

TEST(DistributedMot, MsgTypeNamesAreStable) {
  EXPECT_STREQ(proto::msg_type_name(proto::MsgType::kInsert), "insert");
  EXPECT_STREQ(proto::msg_type_name(proto::MsgType::kQueryReply),
               "query-reply");
  EXPECT_STREQ(proto::msg_type_name(proto::MsgType::kSdlRemove),
               "sdl-remove");
}

}  // namespace
}  // namespace mot
