// The fault-injection subsystem and the protocol's answer to it: the
// reliable link layer must make a dropping / duplicating / reordering
// channel look like a lossless one (same op costs, same placement), the
// whole stack must replay bit-identically from a (plan, seed) pair, and
// crash-stop failures must leave a structure that still answers every
// query correctly.
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "proto/distributed_mot.hpp"
#include "tracking/chain_tracker.hpp"

namespace mot {
namespace {

using faults::ChannelStats;
using faults::FaultPlan;
using faults::LinkFaults;
using faults::UnreliableChannel;
using proto::DistributedMot;
using proto::ProtocolStats;

LinkFaults lossy(double drop, double duplicate, double delay = 0.0,
                 double max_extra_delay = 0.0) {
  LinkFaults faults;
  faults.drop = drop;
  faults.duplicate = duplicate;
  faults.delay = delay;
  faults.max_extra_delay = max_extra_delay;
  return faults;
}

struct Fixture {
  explicit Fixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, DefaultsAndOverridesResolvePerDirectedLink) {
  FaultPlan plan;
  plan.set_default_faults(lossy(0.1, 0.0));
  plan.set_link_faults(3, 5, lossy(0.5, 0.2));

  EXPECT_DOUBLE_EQ(plan.faults_for(3, 5).drop, 0.5);
  EXPECT_DOUBLE_EQ(plan.faults_for(5, 3).drop, 0.1);  // directed override
  EXPECT_DOUBLE_EQ(plan.faults_for(0, 1).drop, 0.1);
  EXPECT_TRUE(plan.has_link_faults());
}

TEST(FaultPlan, CrashesSortByTimeAndRejectRepeats) {
  FaultPlan plan;
  plan.add_crash(5.0, 2).add_crash(1.0, 7).add_crash(5.0, 1);
  ASSERT_EQ(plan.crashes().size(), 3u);
  EXPECT_EQ(plan.crashes()[0].node, 7u);
  EXPECT_EQ(plan.crashes()[1].node, 1u);  // time tie broken by node id
  EXPECT_EQ(plan.crashes()[2].node, 2u);
}

// ---------------------------------------------------------------------------
// UnreliableChannel
// ---------------------------------------------------------------------------

TEST(UnreliableChannel, SameSeedReplaysIdentically) {
  FaultPlan plan;
  plan.set_default_faults(lossy(0.3, 0.2, 0.5, 4.0));

  const auto run = [&plan](std::uint64_t seed) {
    Simulator sim;
    UnreliableChannel channel(plan, seed);
    std::vector<SimTime> arrivals;
    for (int i = 0; i < 200; ++i) {
      channel.transmit(sim, 0, 1, 1.0,
                       [&arrivals, &sim] { arrivals.push_back(sim.now()); });
    }
    sim.run();
    return arrivals;
  };

  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // and the seed actually matters
}

TEST(UnreliableChannel, DeadNodesBlockAndSwallowTraffic) {
  FaultPlan plan;
  Simulator sim;
  UnreliableChannel channel(plan, 1);
  NodeId crashed = kInvalidNode;
  channel.subscribe_crashes([&crashed](NodeId node) { crashed = node; });

  int delivered = 0;
  channel.transmit(sim, 0, 1, 5.0, [&delivered] { ++delivered; });
  channel.crash_now(1);  // dies while the message is in flight
  EXPECT_EQ(crashed, 1u);
  channel.transmit(sim, 0, 1, 5.0, [&delivered] { ++delivered; });
  sim.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stats().blocked_dead, 1u);
  EXPECT_EQ(channel.stats().dead_on_arrival, 1u);
  channel.crash_now(1);  // idempotent
  EXPECT_EQ(channel.stats().crashes, 1u);
}

TEST(UnreliableChannel, ArmSchedulesPlannedCrashes) {
  FaultPlan plan;
  plan.add_crash(10.0, 3);
  Simulator sim;
  UnreliableChannel channel(plan, 1);
  channel.arm(sim);
  EXPECT_FALSE(channel.is_dead(3));
  sim.run();
  EXPECT_TRUE(channel.is_dead(3));
}

// ---------------------------------------------------------------------------
// Reliable delivery: the protocol over a faulty channel
// ---------------------------------------------------------------------------

TEST(FaultTolerance, MoveCostParityWithCentralizedUnderLinkFaults) {
  // The reliable layer makes every logical message arrive effectively
  // once, and op costs are charged at first send — so per-operation costs
  // must equal the centralized engine's even while the wire is lossy.
  const Fixture fx;
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.15, 0.10, 0.3, 6.0));
  UnreliableChannel channel(plan, 99);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  central.publish(0, 0);
  dist.publish(0, 0);
  sim.run();

  Rng rng(3);
  NodeId at = 0;
  for (int i = 0; i < 60; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    const MoveResult expected = central.move(0, at);
    MoveResult actual;
    dist.move(0, at, [&](const MoveResult& r) { actual = r; });
    sim.run();
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost) << "step " << i;
  }
  dist.validate_quiescent();
  EXPECT_EQ(dist.proxy_of(0), central.proxy_of(0));
  EXPECT_EQ(dist.load_per_node(), central.load_per_node());
  EXPECT_GT(dist.stats().retransmissions, 0u);
  EXPECT_GT(dist.stats().duplicates_suppressed, 0u);
  EXPECT_GT(dist.stats().transport_distance, 0.0);
}

TEST(FaultTolerance, HeavyFaultsOnLargeGridEveryQueryCorrect) {
  // The issue's acceptance scenario: 16x16 grid, 100 objects, 10% drop +
  // 5% duplication + reordering delays. Everything completes, the
  // structure is intact, and every query finds the true position.
  const Fixture fx(16);
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.10, 0.05, 0.25, 8.0));
  UnreliableChannel channel(plan, 4242);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  const std::size_t num_objects = 100;
  Rng rng(17);
  for (ObjectId o = 0; o < num_objects; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();

  std::size_t queries_answered = 0;
  for (int round = 0; round < 3; ++round) {
    for (ObjectId o = 0; o < num_objects; ++o) {
      dist.move(o, rng.below(fx.graph.num_nodes()));
    }
    for (ObjectId o = 0; o < num_objects; ++o) {
      const NodeId from = rng.below(fx.graph.num_nodes());
      dist.query(from, o, [&, o](const QueryResult& r) {
        ++queries_answered;
        EXPECT_TRUE(r.found);
        EXPECT_EQ(r.proxy, dist.physical_position(o));
      });
    }
    sim.run();
  }
  dist.validate_quiescent();
  EXPECT_EQ(queries_answered, 3 * num_objects);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  EXPECT_EQ(dist.pending_transfers(), 0u);
  EXPECT_GT(channel.stats().dropped, 0u);
  EXPECT_GT(channel.stats().duplicated, 0u);
  EXPECT_GT(channel.stats().delayed, 0u);
}

TEST(FaultTolerance, DeterministicReplayProducesIdenticalStats) {
  // A (plan, seed) pair fully determines the run: protocol stats, meter
  // distance, and final placement all replay bit-identically.
  const auto run = [](bool faulty) {
    const Fixture fx;
    Simulator sim;
    FaultPlan plan;
    if (faulty) plan.set_default_faults(lossy(0.2, 0.1, 0.3, 5.0));
    UnreliableChannel channel(plan, 31337);
    DistributedMot dist(*fx.provider, sim, fx.chain_options);
    dist.use_channel(&channel);

    Rng rng(5);
    const std::size_t num_objects = 20;
    for (ObjectId o = 0; o < num_objects; ++o) {
      dist.publish(o, rng.below(fx.graph.num_nodes()));
    }
    sim.run();
    for (int round = 0; round < 2; ++round) {
      for (ObjectId o = 0; o < num_objects; ++o) {
        dist.move(o, rng.below(fx.graph.num_nodes()));
        dist.query(rng.below(fx.graph.num_nodes()), o);
      }
      sim.run();
    }
    dist.validate_quiescent();
    return std::tuple{dist.stats(), dist.meter().total_distance(),
                      dist.load_per_node()};
  };

  EXPECT_EQ(run(false), run(false));
  EXPECT_EQ(run(true), run(true));
  EXPECT_NE(std::get<0>(run(true)), std::get<0>(run(false)));
}

// ---------------------------------------------------------------------------
// Crash-stop recovery
// ---------------------------------------------------------------------------

// A non-root sensor whose roles store chain entries but which hosts no
// object physically — a safe, interesting crash victim.
NodeId pick_victim(const DistributedMot& dist, const MotPathProvider& provider,
                   std::size_t num_nodes, std::size_t num_objects) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (provider.root_stop().node == v) continue;
    bool hosts_object = false;
    for (ObjectId o = 0; o < num_objects; ++o) {
      if (dist.physical_position(o) == v) hosts_object = true;
    }
    if (hosts_object) continue;
    if (!dist.objects_through(v).empty()) return v;
  }
  ADD_FAILURE() << "no eligible crash victim";
  return kInvalidNode;
}

TEST(CrashRecovery, QuiescentCrashSplicesChainsAndQueriesStillResolve) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 8);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  const std::size_t num_objects = 12;
  Rng rng(23);
  for (ObjectId o = 0; o < num_objects; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();

  const NodeId victim =
      pick_victim(dist, *fx.provider, fx.graph.num_nodes(), num_objects);
  const std::size_t chained = dist.objects_through(victim).size();
  ASSERT_GT(chained, 0u);
  channel.crash_now(victim);

  EXPECT_EQ(dist.stats().crash_recoveries, 1u);
  EXPECT_GE(dist.stats().chain_splices, chained);
  EXPECT_TRUE(dist.objects_through(victim).empty());
  dist.validate_quiescent();

  // The structure keeps working: moves and queries all over the grid.
  std::size_t answered = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    NodeId to = rng.below(fx.graph.num_nodes());
    while (to == victim) to = rng.below(fx.graph.num_nodes());
    dist.move(o, to);
    NodeId from = rng.below(fx.graph.num_nodes());
    while (from == victim) from = rng.below(fx.graph.num_nodes());
    dist.query(from, o, [&, o](const QueryResult& r) {
      ++answered;
      EXPECT_EQ(r.proxy, dist.physical_position(o));
    });
  }
  sim.run();
  dist.validate_quiescent();
  EXPECT_EQ(answered, num_objects);
}

TEST(CrashRecovery, MidFlightCrashRebuildsDamagedObjects) {
  // Crash a chain sensor while maintenance, queries, and a publish are in
  // flight over a lossy channel — the hardest case: in-flight walkers die
  // with the victim and must be rebuilt or restarted.
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.1, 0.05, 0.2, 4.0));
  UnreliableChannel channel(plan, 77);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  const std::size_t num_objects = 10;
  Rng rng(29);
  for (ObjectId o = 0; o < num_objects; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();
  const NodeId victim =
      pick_victim(dist, *fx.provider, fx.graph.num_nodes(), num_objects);

  std::size_t moves_done = 0;
  std::size_t answered = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    NodeId to = rng.below(fx.graph.num_nodes());
    while (to == victim) to = rng.below(fx.graph.num_nodes());
    dist.move(o, to, [&moves_done](const MoveResult&) { ++moves_done; });
    NodeId from = rng.below(fx.graph.num_nodes());
    while (from == victim) from = rng.below(fx.graph.num_nodes());
    dist.query(from, o, [&, o](const QueryResult& r) {
      ++answered;
      EXPECT_EQ(r.proxy, dist.physical_position(o));
    });
  }
  // A fresh publish that will climb straight through the crash.
  dist.publish(num_objects, victim == 0 ? 1 : 0);
  sim.schedule(2.0, [&channel, victim] { channel.crash_now(victim); });
  sim.run();

  EXPECT_EQ(dist.stats().crash_recoveries, 1u);
  EXPECT_EQ(moves_done, num_objects);
  EXPECT_EQ(answered, num_objects);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  dist.validate_quiescent();

  // Every object is findable afterwards, including the fresh publish.
  std::size_t post = 0;
  for (ObjectId o = 0; o <= num_objects; ++o) {
    NodeId from = rng.below(fx.graph.num_nodes());
    while (from == victim) from = rng.below(fx.graph.num_nodes());
    dist.query(from, o, [&, o](const QueryResult& r) {
      ++post;
      EXPECT_EQ(r.proxy, dist.physical_position(o));
    });
  }
  sim.run();
  dist.validate_quiescent();
  EXPECT_EQ(post, num_objects + 1);
}

TEST(CrashRecovery, QueriesFromTheDeadNodeAreAborted) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.0, 0.0, 1.0, 20.0));  // slow everything
  UnreliableChannel channel(plan, 13);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 0);
  sim.run();
  NodeId origin = 42;  // any live non-root sensor away from the object
  while (origin == fx.provider->root_stop().node) ++origin;
  bool completed = false;
  dist.query(origin, 0, [&completed](const QueryResult&) { completed = true; });
  sim.schedule(1.0, [&channel, origin] { channel.crash_now(origin); });
  sim.run();

  EXPECT_FALSE(completed);  // the requester died; no one to answer
  EXPECT_EQ(dist.stats().queries_aborted, 1u);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  dist.validate_quiescent();
}

}  // namespace
}  // namespace mot
