// The fault-injection subsystem and the protocol's answer to it: the
// reliable link layer must make a dropping / duplicating / reordering
// channel look like a lossless one (same op costs, same placement), the
// whole stack must replay bit-identically from a (plan, seed) pair, and
// crash-stop failures must leave a structure that still answers every
// query correctly.
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "overload/overload.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/service_model.hpp"
#include "tracking/chain_tracker.hpp"

namespace mot {
namespace {

using faults::ChannelStats;
using faults::FaultPlan;
using faults::LinkFaults;
using faults::UnreliableChannel;
using proto::DistributedMot;
using proto::ProtocolStats;

LinkFaults lossy(double drop, double duplicate, double delay = 0.0,
                 double max_extra_delay = 0.0) {
  LinkFaults faults;
  faults.drop = drop;
  faults.duplicate = duplicate;
  faults.delay = delay;
  faults.max_extra_delay = max_extra_delay;
  return faults;
}

struct Fixture {
  explicit Fixture(std::size_t side = 8)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hp;
    hp.seed = 7;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hp);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, DefaultsAndOverridesResolvePerDirectedLink) {
  FaultPlan plan;
  plan.set_default_faults(lossy(0.1, 0.0));
  plan.set_link_faults(3, 5, lossy(0.5, 0.2));

  EXPECT_DOUBLE_EQ(plan.faults_for(3, 5).drop, 0.5);
  EXPECT_DOUBLE_EQ(plan.faults_for(5, 3).drop, 0.1);  // directed override
  EXPECT_DOUBLE_EQ(plan.faults_for(0, 1).drop, 0.1);
  EXPECT_TRUE(plan.has_link_faults());
}

TEST(FaultPlan, CrashesSortByTimeAndRejectRepeats) {
  FaultPlan plan;
  plan.add_crash(5.0, 2).add_crash(1.0, 7).add_crash(5.0, 1);
  ASSERT_EQ(plan.crashes().size(), 3u);
  EXPECT_EQ(plan.crashes()[0].node, 7u);
  EXPECT_EQ(plan.crashes()[1].node, 1u);  // time tie broken by node id
  EXPECT_EQ(plan.crashes()[2].node, 2u);
}

// ---------------------------------------------------------------------------
// UnreliableChannel
// ---------------------------------------------------------------------------

TEST(UnreliableChannel, SameSeedReplaysIdentically) {
  FaultPlan plan;
  plan.set_default_faults(lossy(0.3, 0.2, 0.5, 4.0));

  const auto run = [&plan](std::uint64_t seed) {
    Simulator sim;
    UnreliableChannel channel(plan, seed);
    std::vector<SimTime> arrivals;
    for (int i = 0; i < 200; ++i) {
      channel.transmit(sim, 0, 1, 1.0,
                       [&arrivals, &sim] { arrivals.push_back(sim.now()); });
    }
    sim.run();
    return arrivals;
  };

  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // and the seed actually matters
}

TEST(UnreliableChannel, DeadNodesBlockAndSwallowTraffic) {
  FaultPlan plan;
  Simulator sim;
  UnreliableChannel channel(plan, 1);
  NodeId crashed = kInvalidNode;
  channel.subscribe_crashes([&crashed](NodeId node) { crashed = node; });

  int delivered = 0;
  channel.transmit(sim, 0, 1, 5.0, [&delivered] { ++delivered; });
  channel.crash_now(1);  // dies while the message is in flight
  EXPECT_EQ(crashed, 1u);
  channel.transmit(sim, 0, 1, 5.0, [&delivered] { ++delivered; });
  sim.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stats().blocked_dead, 1u);
  EXPECT_EQ(channel.stats().dead_on_arrival, 1u);
  channel.crash_now(1);  // idempotent
  EXPECT_EQ(channel.stats().crashes, 1u);
}

TEST(UnreliableChannel, ArmSchedulesPlannedCrashes) {
  FaultPlan plan;
  plan.add_crash(10.0, 3);
  Simulator sim;
  UnreliableChannel channel(plan, 1);
  channel.arm(sim);
  EXPECT_FALSE(channel.is_dead(3));
  sim.run();
  EXPECT_TRUE(channel.is_dead(3));
}

// ---------------------------------------------------------------------------
// Reliable delivery: the protocol over a faulty channel
// ---------------------------------------------------------------------------

TEST(FaultTolerance, MoveCostParityWithCentralizedUnderLinkFaults) {
  // The reliable layer makes every logical message arrive effectively
  // once, and op costs are charged at first send — so per-operation costs
  // must equal the centralized engine's even while the wire is lossy.
  const Fixture fx;
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.15, 0.10, 0.3, 6.0));
  UnreliableChannel channel(plan, 99);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  central.publish(0, 0);
  dist.publish(0, 0);
  sim.run();

  Rng rng(3);
  NodeId at = 0;
  for (int i = 0; i < 60; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    const MoveResult expected = central.move(0, at);
    MoveResult actual;
    dist.move(0, at, [&](const MoveResult& r) { actual = r; });
    sim.run();
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost) << "step " << i;
  }
  dist.validate_quiescent();
  EXPECT_EQ(dist.proxy_of(0), central.proxy_of(0));
  EXPECT_EQ(dist.load_per_node(), central.load_per_node());
  EXPECT_GT(dist.stats().retransmissions, 0u);
  EXPECT_GT(dist.stats().duplicates_suppressed, 0u);
  EXPECT_GT(dist.stats().transport_distance, 0.0);
}

TEST(FaultTolerance, HeavyFaultsOnLargeGridEveryQueryCorrect) {
  // The issue's acceptance scenario: 16x16 grid, 100 objects, 10% drop +
  // 5% duplication + reordering delays. Everything completes, the
  // structure is intact, and every query finds the true position.
  const Fixture fx(16);
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.10, 0.05, 0.25, 8.0));
  UnreliableChannel channel(plan, 4242);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  const std::size_t num_objects = 100;
  Rng rng(17);
  for (ObjectId o = 0; o < num_objects; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();

  std::size_t queries_answered = 0;
  for (int round = 0; round < 3; ++round) {
    for (ObjectId o = 0; o < num_objects; ++o) {
      dist.move(o, rng.below(fx.graph.num_nodes()));
    }
    for (ObjectId o = 0; o < num_objects; ++o) {
      const NodeId from = rng.below(fx.graph.num_nodes());
      dist.query(from, o, [&, o](const QueryResult& r) {
        ++queries_answered;
        EXPECT_TRUE(r.found);
        EXPECT_EQ(r.proxy, dist.physical_position(o));
      });
    }
    sim.run();
  }
  dist.validate_quiescent();
  EXPECT_EQ(queries_answered, 3 * num_objects);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  EXPECT_EQ(dist.pending_transfers(), 0u);
  EXPECT_GT(channel.stats().dropped, 0u);
  EXPECT_GT(channel.stats().duplicated, 0u);
  EXPECT_GT(channel.stats().delayed, 0u);
}

TEST(FaultTolerance, DeterministicReplayProducesIdenticalStats) {
  // A (plan, seed) pair fully determines the run: protocol stats, meter
  // distance, and final placement all replay bit-identically.
  const auto run = [](bool faulty) {
    const Fixture fx;
    Simulator sim;
    FaultPlan plan;
    if (faulty) plan.set_default_faults(lossy(0.2, 0.1, 0.3, 5.0));
    UnreliableChannel channel(plan, 31337);
    DistributedMot dist(*fx.provider, sim, fx.chain_options);
    dist.use_channel(&channel);

    Rng rng(5);
    const std::size_t num_objects = 20;
    for (ObjectId o = 0; o < num_objects; ++o) {
      dist.publish(o, rng.below(fx.graph.num_nodes()));
    }
    sim.run();
    for (int round = 0; round < 2; ++round) {
      for (ObjectId o = 0; o < num_objects; ++o) {
        dist.move(o, rng.below(fx.graph.num_nodes()));
        dist.query(rng.below(fx.graph.num_nodes()), o);
      }
      sim.run();
    }
    dist.validate_quiescent();
    return std::tuple{dist.stats(), dist.meter().total_distance(),
                      dist.load_per_node()};
  };

  EXPECT_EQ(run(false), run(false));
  EXPECT_EQ(run(true), run(true));
  EXPECT_NE(std::get<0>(run(true)), std::get<0>(run(false)));
}

// ---------------------------------------------------------------------------
// Crash-stop recovery
// ---------------------------------------------------------------------------

// A non-root sensor whose roles store chain entries but which hosts no
// object physically — a safe, interesting crash victim.
NodeId pick_victim(const DistributedMot& dist, const MotPathProvider& provider,
                   std::size_t num_nodes, std::size_t num_objects) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (provider.root_stop().node == v) continue;
    bool hosts_object = false;
    for (ObjectId o = 0; o < num_objects; ++o) {
      if (dist.physical_position(o) == v) hosts_object = true;
    }
    if (hosts_object) continue;
    if (!dist.objects_through(v).empty()) return v;
  }
  ADD_FAILURE() << "no eligible crash victim";
  return kInvalidNode;
}

TEST(CrashRecovery, QuiescentCrashSplicesChainsAndQueriesStillResolve) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 8);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  const std::size_t num_objects = 12;
  Rng rng(23);
  for (ObjectId o = 0; o < num_objects; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();

  const NodeId victim =
      pick_victim(dist, *fx.provider, fx.graph.num_nodes(), num_objects);
  const std::size_t chained = dist.objects_through(victim).size();
  ASSERT_GT(chained, 0u);
  channel.crash_now(victim);

  EXPECT_EQ(dist.stats().crash_recoveries, 1u);
  EXPECT_GE(dist.stats().chain_splices, chained);
  EXPECT_TRUE(dist.objects_through(victim).empty());
  dist.validate_quiescent();

  // The structure keeps working: moves and queries all over the grid.
  std::size_t answered = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    NodeId to = rng.below(fx.graph.num_nodes());
    while (to == victim) to = rng.below(fx.graph.num_nodes());
    dist.move(o, to);
    NodeId from = rng.below(fx.graph.num_nodes());
    while (from == victim) from = rng.below(fx.graph.num_nodes());
    dist.query(from, o, [&, o](const QueryResult& r) {
      ++answered;
      EXPECT_EQ(r.proxy, dist.physical_position(o));
    });
  }
  sim.run();
  dist.validate_quiescent();
  EXPECT_EQ(answered, num_objects);
}

TEST(CrashRecovery, MidFlightCrashRebuildsDamagedObjects) {
  // Crash a chain sensor while maintenance, queries, and a publish are in
  // flight over a lossy channel — the hardest case: in-flight walkers die
  // with the victim and must be rebuilt or restarted.
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.1, 0.05, 0.2, 4.0));
  UnreliableChannel channel(plan, 77);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  const std::size_t num_objects = 10;
  Rng rng(29);
  for (ObjectId o = 0; o < num_objects; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();
  const NodeId victim =
      pick_victim(dist, *fx.provider, fx.graph.num_nodes(), num_objects);

  std::size_t moves_done = 0;
  std::size_t answered = 0;
  for (ObjectId o = 0; o < num_objects; ++o) {
    NodeId to = rng.below(fx.graph.num_nodes());
    while (to == victim) to = rng.below(fx.graph.num_nodes());
    dist.move(o, to, [&moves_done](const MoveResult&) { ++moves_done; });
    NodeId from = rng.below(fx.graph.num_nodes());
    while (from == victim) from = rng.below(fx.graph.num_nodes());
    dist.query(from, o, [&, o](const QueryResult& r) {
      ++answered;
      EXPECT_EQ(r.proxy, dist.physical_position(o));
    });
  }
  // A fresh publish that will climb straight through the crash.
  dist.publish(num_objects, victim == 0 ? 1 : 0);
  sim.schedule(2.0, [&channel, victim] { channel.crash_now(victim); });
  sim.run();

  EXPECT_EQ(dist.stats().crash_recoveries, 1u);
  EXPECT_EQ(moves_done, num_objects);
  EXPECT_EQ(answered, num_objects);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  dist.validate_quiescent();

  // Every object is findable afterwards, including the fresh publish.
  std::size_t post = 0;
  for (ObjectId o = 0; o <= num_objects; ++o) {
    NodeId from = rng.below(fx.graph.num_nodes());
    while (from == victim) from = rng.below(fx.graph.num_nodes());
    dist.query(from, o, [&, o](const QueryResult& r) {
      ++post;
      EXPECT_EQ(r.proxy, dist.physical_position(o));
    });
  }
  sim.run();
  dist.validate_quiescent();
  EXPECT_EQ(post, num_objects + 1);
}

TEST(CrashRecovery, QueriesFromTheDeadNodeAreAborted) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.0, 0.0, 1.0, 20.0));  // slow everything
  UnreliableChannel channel(plan, 13);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 0);
  sim.run();
  NodeId origin = 42;  // any live non-root sensor away from the object
  while (origin == fx.provider->root_stop().node) ++origin;
  bool completed = false;
  dist.query(origin, 0, [&completed](const QueryResult&) { completed = true; });
  sim.schedule(1.0, [&channel, origin] { channel.crash_now(origin); });
  sim.run();

  EXPECT_FALSE(completed);  // the requester died; no one to answer
  EXPECT_EQ(dist.stats().queries_aborted, 1u);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  dist.validate_quiescent();
}

// ---------------------------------------------------------------------------
// Partitions
// ---------------------------------------------------------------------------

TEST(Partition, PlannedWindowCutsBothDirectionsAndHeals) {
  FaultPlan plan;
  plan.add_partition(10.0, 20.0, {0}, {1});
  Simulator sim;
  UnreliableChannel channel(plan, 1);
  channel.arm(sim);

  EXPECT_FALSE(channel.link_blocked(0.0, 0, 1));
  int delivered = 0;
  sim.schedule(15.0, [&] {
    EXPECT_TRUE(channel.link_blocked(sim.now(), 0, 1));
    EXPECT_TRUE(channel.link_blocked(sim.now(), 1, 0));
    channel.transmit(sim, 0, 1, 1.0, [&delivered] { ++delivered; });
  });
  sim.run();
  EXPECT_FALSE(channel.link_blocked(sim.now(), 0, 1));  // healed at 20
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stats().partition_blocked, 1u);
  EXPECT_EQ(channel.stats().partitions_cut, 1u);
  EXPECT_EQ(channel.stats().partitions_healed, 1u);
}

TEST(Partition, CutSeversInFlightCopiesAndTheLedgerStillBalances) {
  FaultPlan plan;
  Simulator sim;
  UnreliableChannel channel(plan, 3);
  int delivered = 0;
  channel.transmit(sim, 0, 1, 8.0, [&delivered] { ++delivered; });
  const std::uint64_t cut = channel.cut_now({0}, {1});
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stats().severed_in_flight, 1u);
  EXPECT_TRUE(channel.stats().conserved());

  channel.heal_now(cut);
  channel.transmit(sim, 0, 1, 8.0, [&delivered] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(channel.stats().conserved());
}

TEST(ChannelStats, ConservationHoldsUnderHeavyDuplicationAndLoss) {
  FaultPlan plan;
  plan.set_default_faults(lossy(0.9, 1.0, 0.5, 4.0));
  Simulator sim;
  UnreliableChannel channel(plan, 17);
  std::uint64_t delivered = 0;
  for (int i = 0; i < 300; ++i) {
    channel.transmit(sim, 0, 1, 1.0, [&delivered] { ++delivered; });
  }
  const ChannelStats& cs = channel.stats();
  EXPECT_TRUE(cs.conserved());  // the identity holds mid-flight too
  sim.run();
  EXPECT_TRUE(cs.conserved());
  EXPECT_EQ(cs.in_flight, 0u);
  EXPECT_EQ(cs.transmissions, 300u);
  EXPECT_GT(cs.duplicated, 0u);
  EXPECT_GT(cs.dropped, 0u);
  EXPECT_EQ(cs.delivered, delivered);
}

// Regression for retransmission behaviour across a long-lived cut: the
// carrier-sense check parks resends instead of letting timeouts hammer a
// severed link, and the parked backlog drains to completion once the
// partition heals — thousands of ticks later.
TEST(Partition, LongPartitionSuppressesResendsAndDrainsAfterHeal) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 5);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 0);
  sim.run();

  std::vector<NodeId> west;
  std::vector<NodeId> east;
  for (NodeId v = 0; v < 64; ++v) (v < 32 ? west : east).push_back(v);
  const std::uint64_t cut = channel.cut_now(west, east);

  bool moved = false;
  dist.move(0, 63, [&moved](const MoveResult&) { moved = true; });
  sim.run_until(sim.now() + 5000.0);
  EXPECT_FALSE(moved);  // the destination is across the cut
  EXPECT_GT(dist.stats().retransmits_suppressed, 0u);
  // Suppressed resends never hit the wire: actual retransmissions stay
  // bounded no matter how long the partition lasts.
  EXPECT_LT(dist.stats().retransmissions, 100u);

  channel.heal_now(cut);
  sim.run();
  EXPECT_TRUE(moved);
  EXPECT_EQ(dist.physical_position(0), 63u);
  dist.validate_quiescent();

  bool answered = false;
  dist.query(5, 0, [&answered](const QueryResult& r) {
    answered = true;
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.proxy, 63u);
  });
  sim.run();
  EXPECT_TRUE(answered);
  EXPECT_TRUE(channel.stats().conserved());
}

// ---------------------------------------------------------------------------
// Query resilience: crashes and partitions racing live queries
// ---------------------------------------------------------------------------

TEST(QueryResilience, CrashOnTheChainDuringAQueryStillTerminates) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.0, 0.0, 1.0, 16.0));  // slow every hop
  UnreliableChannel channel(plan, 23);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 0);
  sim.run();

  const NodeId root = fx.provider->root_stop().node;
  NodeId victim = kInvalidNode;
  for (NodeId v = 1; v < 64 && victim == kInvalidNode; ++v) {
    if (v == root || v == 63) continue;
    if (!dist.objects_through(v).empty()) victim = v;
  }
  ASSERT_NE(victim, kInvalidNode);

  bool answered = false;
  QueryResult result;
  dist.query(63, 0, [&](const QueryResult& r) {
    answered = true;
    result = r;
  });
  sim.schedule(2.0, [&channel, victim] { channel.crash_now(victim); });
  sim.run();

  EXPECT_TRUE(answered);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 0u);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  dist.validate_quiescent();
}

// A query is issued, the network splits between its origin and the
// object, and the proxy migrates while the cut is open. The query must
// terminate after the heal with the object's settled position.
TEST(QueryResilience, PartitionHealRaceWithSequentialIssue) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 29);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 4);  // west half
  sim.run();

  bool answered = false;
  QueryResult result;
  dist.query(60, 0, [&](const QueryResult& r) {  // east origin
    answered = true;
    result = r;
  });
  sim.run_until(sim.now() + 3.0);  // walker mid-flight when the cut lands

  std::vector<NodeId> west;
  std::vector<NodeId> east;
  for (NodeId v = 0; v < 64; ++v) (v < 32 ? west : east).push_back(v);
  const std::uint64_t cut = channel.cut_now(west, east);

  bool moved = false;
  dist.move(0, 9, [&moved](const MoveResult&) { moved = true; });
  sim.run_until(sim.now() + 600.0);
  channel.heal_now(cut);
  sim.run();

  EXPECT_TRUE(moved);
  EXPECT_TRUE(answered);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, dist.physical_position(0));
  dist.validate_quiescent();
}

TEST(QueryResilience, PartitionHealRaceWithOverlappedIssue) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 37);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 4);
  sim.run();

  // Query and move issued back-to-back — the concurrent shape — and the
  // cut lands while both are in flight.
  bool answered = false;
  QueryResult result;
  dist.query(60, 0, [&](const QueryResult& r) {
    answered = true;
    result = r;
  });
  bool moved = false;
  dist.move(0, 9, [&moved](const MoveResult&) { moved = true; });
  sim.run_until(sim.now() + 2.0);

  std::vector<NodeId> west;
  std::vector<NodeId> east;
  for (NodeId v = 0; v < 64; ++v) (v < 32 ? west : east).push_back(v);
  const std::uint64_t cut = channel.cut_now(west, east);
  sim.run_until(sim.now() + 600.0);
  channel.heal_now(cut);
  sim.run();

  EXPECT_TRUE(moved);
  EXPECT_TRUE(answered);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, dist.physical_position(0));
  dist.validate_quiescent();
}

// ---------------------------------------------------------------------------
// Query policy: deadlines, retries, hedging, replica failover
// ---------------------------------------------------------------------------

TEST(QueryPolicy, DeadlineRetriesThenAbortsAcrossAnIsolation) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 31);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);
  proto::QueryPolicy policy;
  policy.deadline = 50.0;
  policy.max_attempts = 3;
  policy.backoff = 2.0;
  dist.set_query_policy(policy);

  dist.publish(0, 0);
  sim.run();

  const NodeId origin = 63;
  std::vector<NodeId> rest;
  for (NodeId v = 0; v < 64; ++v) {
    if (v != origin) rest.push_back(v);
  }
  const std::uint64_t cut = channel.cut_now({origin}, rest);

  bool answered = false;
  QueryResult result;
  dist.query(origin, 0, [&](const QueryResult& r) {
    answered = true;
    result = r;
  });
  // Attempt deadlines 50 + 100 + 200 with slack: the budget exhausts
  // while the origin is still cut off.
  sim.run_until(sim.now() + 1000.0);
  EXPECT_TRUE(answered);
  EXPECT_FALSE(result.found);  // aborted explicitly, not hung
  EXPECT_EQ(dist.stats().queries_retried, 2u);
  EXPECT_EQ(dist.stats().queries_deadline_aborted, 1u);
  EXPECT_GT(dist.stats().retransmits_suppressed, 0u);

  channel.heal_now(cut);
  sim.run();
  dist.validate_quiescent();
  EXPECT_TRUE(channel.stats().conserved());
}

TEST(QueryPolicy, HedgedDuplicateWalkerAnswersExactlyOnce) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.0, 0.0, 1.0, 8.0));  // slow enough to hedge
  UnreliableChannel channel(plan, 43);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);
  proto::QueryPolicy policy;
  policy.hedge_delay = 2.0;
  dist.set_query_policy(policy);

  dist.publish(0, 0);
  sim.run();

  int answers = 0;
  QueryResult result;
  dist.query(63, 0, [&](const QueryResult& r) {
    ++answers;
    result = r;
  });
  sim.run();

  // First reply wins; the loser's frames are garbage-collected at win
  // time (or dropped as stale if one already landed) — either way the
  // callback fires exactly once and nothing lingers.
  EXPECT_EQ(answers, 1);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 0u);
  EXPECT_EQ(dist.stats().queries_hedged, 1u);
  EXPECT_EQ(dist.inflight_operations(), 0u);
  dist.validate_quiescent();
}

TEST(QueryPolicy, ReplicaFailoverAnswersAcrossAnIsolatedChainNode) {
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  UnreliableChannel channel(plan, 41);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);
  dist.replicate_detection_lists(true);

  dist.publish(0, 0);
  sim.run();

  const NodeId root = fx.provider->root_stop().node;
  NodeId victim = kInvalidNode;
  for (NodeId v = 1; v < 64 && victim == kInvalidNode; ++v) {
    if (v == root || v == 63) continue;
    if (!dist.objects_through(v).empty()) victim = v;
  }
  ASSERT_NE(victim, kInvalidNode);

  std::vector<NodeId> rest;
  for (NodeId v = 0; v < 64; ++v) {
    if (v != victim) rest.push_back(v);
  }
  const std::uint64_t cut = channel.cut_now({victim}, rest);

  bool answered = false;
  QueryResult result;
  dist.query(63, 0, [&](const QueryResult& r) {
    answered = true;
    result = r;
  });
  sim.run_until(sim.now() + 2000.0);

  // The walker reads the isolated hop's replicated detection list and
  // answers without waiting for the heal.
  EXPECT_TRUE(answered);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 0u);
  EXPECT_GT(dist.stats().query_failovers, 0u);

  channel.heal_now(cut);
  sim.run();
  dist.validate_quiescent();
}

// ---------------------------------------------------------------------------
// Retransmission backoff edges
// ---------------------------------------------------------------------------

TEST(Retransmission, BackoffCapHoldsThroughALossyPartitionWindow) {
  // A lossy wire drives per-frame backoff toward its cap before the cut
  // lands; the cut then parks resends via carrier sense. Neither side of
  // the combination may wedge the sender: the parked frames keep their
  // capped (finite) timers and the move completes promptly after heal.
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.6, 0.0));
  UnreliableChannel channel(plan, 21);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  dist.publish(0, 0);
  sim.run();
  const std::uint64_t warmup = dist.stats().retransmissions;
  EXPECT_GT(warmup, 0u);  // the loss rate is biting

  std::vector<NodeId> west;
  std::vector<NodeId> east;
  for (NodeId v = 0; v < 64; ++v) (v < 32 ? west : east).push_back(v);
  const std::uint64_t cut = channel.cut_now(west, east);

  bool moved = false;
  dist.move(0, 63, [&moved](const MoveResult&) { moved = true; });
  sim.run_until(sim.now() + 20000.0);
  EXPECT_FALSE(moved);
  EXPECT_GT(dist.stats().retransmits_suppressed, 0u);
  // Suppressed wakeups burn no attempts: even a 20000-tick cut on a
  // lossy wire stays far from the attempts cap (which MOT_CHECKs), and
  // on-wire retransmissions stay bounded by the pre-cut traffic.
  EXPECT_LT(dist.stats().retransmissions, warmup + 200u);

  channel.heal_now(cut);
  sim.run();
  EXPECT_TRUE(moved);
  EXPECT_EQ(dist.physical_position(0), 63u);
  dist.validate_quiescent();
  EXPECT_TRUE(channel.stats().conserved());
}

TEST(Retransmission, OpenBreakerParksFutileRetriesUntilItsProbeCloses) {
  // With the service model attached, consecutive genuine timeouts trip
  // the per-link breaker; while it is open, further resends toward that
  // link are parked (breaker_suppressed) instead of hammering a wire
  // that just demonstrated it is black-holing frames. Half-open probes
  // eventually close the breaker and everything still completes.
  const Fixture fx;
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.45, 0.0));
  UnreliableChannel channel(plan, 11);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);
  overload::OverloadConfig cfg;
  cfg.service_rate = 8.0;
  cfg.queue_capacity = 64;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown = 8.0;
  cfg.seed = 5;
  ServiceModel service(sim, fx.graph.num_nodes(), cfg);
  dist.use_overload(&service);

  Rng rng(23);
  for (ObjectId o = 0; o < 4; ++o) {
    dist.publish(o, rng.below(fx.graph.num_nodes()));
  }
  sim.run();
  std::size_t answered = 0;
  for (int i = 0; i < 24; ++i) {
    dist.query(rng.below(fx.graph.num_nodes()),
               static_cast<ObjectId>(i % 4),
               [&answered](const QueryResult& r) {
                 ++answered;
                 EXPECT_TRUE(r.found);
               });
  }
  sim.run();
  EXPECT_EQ(answered, 24u);
  const ProtocolStats& stats = dist.stats();
  EXPECT_GT(stats.breaker_trips, 0u);
  EXPECT_GT(stats.breaker_suppressed, 0u);  // futile retries parked
  EXPECT_GT(stats.breaker_closes, 0u);      // and the links came back
  EXPECT_TRUE(dist.invariant_violations().empty());
}

TEST(Retransmission, RetransmitRacingItsOwnAckIsDeduplicated) {
  // Every copy (data and ack alike) is delayed by up to 10 ticks while
  // single-hop RTOs are ~3: frames routinely time out and resend while
  // their original — or its ack — is still in flight. The receiver-side
  // dedup window must make the race harmless: effects apply exactly
  // once and costs match the centralized engine step for step.
  const Fixture fx;
  ChainTracker central("seq", *fx.provider, fx.chain_options);
  Simulator sim;
  FaultPlan plan;
  plan.set_default_faults(lossy(0.0, 0.0, /*delay=*/1.0,
                                /*max_extra_delay=*/10.0));
  UnreliableChannel channel(plan, 31);
  DistributedMot dist(*fx.provider, sim, fx.chain_options);
  dist.use_channel(&channel);

  central.publish(0, 0);
  dist.publish(0, 0);
  sim.run();

  Rng rng(9);
  NodeId at = 0;
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = fx.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    const MoveResult expected = central.move(0, at);
    MoveResult actual;
    dist.move(0, at, [&actual](const MoveResult& r) { actual = r; });
    sim.run();
    ASSERT_DOUBLE_EQ(actual.cost, expected.cost) << "step " << i;
  }
  EXPECT_GT(dist.stats().retransmissions, 0u);       // the race happened
  EXPECT_GT(dist.stats().duplicates_suppressed, 0u); // and was absorbed
  EXPECT_EQ(dist.proxy_of(0), central.proxy_of(0));
  EXPECT_EQ(dist.load_per_node(), central.load_per_node());
  dist.validate_quiescent();
}

}  // namespace
}  // namespace mot
