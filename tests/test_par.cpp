#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "expt/fig_runners.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_path.hpp"
#include "util/rng.hpp"

namespace mot {
namespace {

// ---------------------------------------------------------------- ThreadPool

// The core determinism contract: a slot-writing parallel_for_each fills
// exactly the same vector for any worker count, repeatedly.
TEST(ThreadPool, DeterministicAcrossWorkerCounts) {
  constexpr std::size_t kCount = 257;  // odd, not a multiple of any pool
  auto run = [](std::size_t workers) {
    par::ThreadPool pool(workers);
    std::vector<std::uint64_t> out(kCount, 0);
    pool.for_each(kCount, [&](std::size_t i) {
      // Index-derived work only — the contract every sweep cell follows.
      Rng rng(SeedTree(99).seed_for("task", static_cast<std::uint64_t>(i)));
      out[i] = rng();
    });
    return out;
  };
  const std::vector<std::uint64_t> serial = run(1);
  for (int repeat = 0; repeat < 5; ++repeat) {
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
  }
}

TEST(ThreadPool, MapReturnsResultsInIndexOrder) {
  par::ThreadPool pool(4);
  const std::vector<std::size_t> out =
      pool.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

// Heavily unbalanced task costs: stealing must still complete every index
// exactly once.
TEST(ThreadPool, UnbalancedTasksAllRunOnce) {
  par::ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.for_each(kCount, [&](std::size_t i) {
    if (i == 0) {  // one task dwarfs the rest
      volatile std::uint64_t sink = 0;
      for (std::uint64_t k = 0; k < 2'000'000; ++k) sink += k;
    }
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

// A for_each issued from inside a pool task must run inline (serially)
// rather than deadlock waiting for the busy workers.
TEST(ThreadPool, NestedForEachRunsInline) {
  par::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.for_each(4, [&](std::size_t) {
    EXPECT_GE(par::ThreadPool::current_worker(), 0);
    par::parallel_for_each(8, [&](std::size_t) {
      // Inline execution stays on the same pool worker.
      EXPECT_GE(par::ThreadPool::current_worker(), 0);
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
  EXPECT_EQ(par::ThreadPool::current_worker(), -1);
}

TEST(ThreadPool, PropagatesFirstException) {
  par::ThreadPool pool(4);
  EXPECT_THROW(pool.for_each(32,
                             [](std::size_t i) {
                               if (i % 7 == 3) {
                                 throw std::runtime_error("task failed");
                               }
                             }),
               std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int> ran{0};
  pool.for_each(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, DefaultWorkersResolveHardware) {
  const std::size_t saved = par::default_workers();
  par::set_default_workers(0);
  EXPECT_GE(par::default_workers(), 1u);
  par::set_default_workers(3);
  EXPECT_EQ(par::default_workers(), 3u);
  par::set_default_workers(saved);
}

// ------------------------------------------------------------ ShardedOracle

// Many threads hammer the same cached oracle; distances must match a
// single-threaded reference oracle exactly. Run under TSan by the ci.sh
// thread-sanitizer stage to certify the lock-striped cache.
TEST(ShardedOracle, ConcurrentDistancesMatchSerial) {
  const Graph graph = make_grid(12, 12);
  CachedDistanceOracle reference(graph);
  CachedDistanceOracle shared(graph);
  const std::size_t n = graph.num_nodes();

  constexpr int kThreads = 8;
  std::vector<std::vector<Weight>> got(kThreads);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> queries(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(SeedTree(7).seed_for("queries", static_cast<std::uint64_t>(t)));
    for (int q = 0; q < 400; ++q) {
      queries[t].push_back({static_cast<NodeId>(rng.below(n)),
                            static_cast<NodeId>(rng.below(n))});
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(queries[t].size());
      for (const auto& [u, v] : queries[t]) {
        got[t].push_back(shared.distance(u, v));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t q = 0; q < queries[t].size(); ++q) {
      const auto& [u, v] = queries[t][q];
      EXPECT_EQ(got[t][q], reference.distance(u, v))
          << "thread " << t << " query " << q;
    }
  }
  EXPECT_GT(shared.cached_sources(), 0u);
  EXPECT_LE(shared.cached_sources(), n);
}

TEST(ShardedOracle, ExactDiameterParallelMatchesKnownValue) {
  const Graph diam_graph = make_grid(9, 9);
  // Grid diameter is the Manhattan corner-to-corner distance.
  EXPECT_EQ(exact_diameter(diam_graph), 16.0);
}

// ------------------------------------------------------------ ParallelSweep

// The headline guarantee: sweep tables are byte-for-byte identical no
// matter how many workers run the cells.
TEST(ParallelSweep, MaintenanceTableBitIdentical) {
  SweepParams params;
  params.num_objects = 8;
  params.moves_per_object = 12;
  params.num_seeds = 2;
  params.sizes = {16, 36};

  const std::size_t saved = par::default_workers();
  par::set_default_workers(1);
  const std::string serial = run_maintenance_sweep(params).to_string();
  par::set_default_workers(4);
  const std::string parallel = run_maintenance_sweep(params).to_string();
  par::set_default_workers(saved);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelSweep, QueryTableBitIdentical) {
  SweepParams params;
  params.num_objects = 8;
  params.moves_per_object = 12;
  params.num_seeds = 2;
  params.sizes = {16, 36};
  params.algos = {Algo::kMot, Algo::kStun};

  const std::size_t saved = par::default_workers();
  par::set_default_workers(1);
  const std::string serial = run_query_sweep(params).to_string();
  par::set_default_workers(4);
  const std::string parallel = run_query_sweep(params).to_string();
  par::set_default_workers(saved);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelSweep, ConcurrentModeBitIdentical) {
  SweepParams params;
  params.num_objects = 6;
  params.moves_per_object = 10;
  params.num_seeds = 2;
  params.sizes = {16};
  params.concurrent = true;
  params.algos = {Algo::kMot, Algo::kZdat};

  const std::size_t saved = par::default_workers();
  par::set_default_workers(1);
  const std::string serial = run_maintenance_sweep(params).to_string();
  par::set_default_workers(4);
  const std::string parallel = run_maintenance_sweep(params).to_string();
  par::set_default_workers(saved);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelSweep, LoadFigureBitIdentical) {
  LoadFigureParams params;
  params.num_nodes = 64;
  params.num_objects = 10;
  params.moves_per_object = 5;
  params.num_seeds = 2;

  const std::size_t saved = par::default_workers();
  par::set_default_workers(1);
  const std::string serial = run_load_figure(params).to_string();
  par::set_default_workers(4);
  const std::string parallel = run_load_figure(params).to_string();
  par::set_default_workers(saved);
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace mot
