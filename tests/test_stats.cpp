#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mot {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats merged_a;
  OnlineStats merged_b;
  OnlineStats sequential;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? merged_a : merged_b).add(x);
    sequential.add(x);
  }
  merged_a.merge(merged_b);
  EXPECT_EQ(merged_a.count(), sequential.count());
  EXPECT_NEAR(merged_a.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged_a.variance(), sequential.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(merged_a.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged_a.max(), sequential.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats stats;
  stats.add(1.0);
  OnlineStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 1u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 100.0);
  EXPECT_NEAR(samples.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(samples.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(samples.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(samples.mean(), 50.5, 1e-9);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet samples;
  samples.add(0.0);
  samples.add(10.0);
  EXPECT_NEAR(samples.quantile(0.25), 2.5, 1e-9);
  EXPECT_NEAR(samples.quantile(0.75), 7.5, 1e-9);
}

TEST(SampleSet, SingleElement) {
  SampleSet samples;
  samples.add(3.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.1), 3.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.9), 3.0);
}

TEST(SampleSet, AddAfterQuantileStillSorted) {
  SampleSet samples;
  samples.add(5.0);
  samples.add(1.0);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  samples.add(0.5);
  EXPECT_DOUBLE_EQ(samples.min(), 0.5);
  EXPECT_DOUBLE_EQ(samples.max(), 5.0);
}

TEST(Histogram, CountsAndGrowth) {
  Histogram histogram(2);
  histogram.add(0);
  histogram.add(0);
  histogram.add(5, 3);  // grows the bin vector
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(1), 0u);
  EXPECT_EQ(histogram.bin_count(5), 3u);
  EXPECT_EQ(histogram.bin_count(99), 0u);
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.num_bins(), 6u);
}

TEST(Histogram, CountAbove) {
  Histogram histogram;
  histogram.add(1);
  histogram.add(10);
  histogram.add(11);
  histogram.add(12, 2);
  EXPECT_EQ(histogram.count_above(10), 3u);
  EXPECT_EQ(histogram.count_above(0), 5u);
  EXPECT_EQ(histogram.count_above(12), 0u);
}

TEST(Histogram, ToStringSkipsEmptyBins) {
  Histogram histogram;
  histogram.add(2);
  histogram.add(4, 2);
  EXPECT_EQ(histogram.to_string(), "2:1 4:2 ");
}

}  // namespace
}  // namespace mot
