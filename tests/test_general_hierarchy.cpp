#include "hier/general_hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"

namespace mot {
namespace {

struct Built {
  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<GeneralHierarchy> hierarchy;
};

Built build(Graph graph) {
  Built built;
  built.graph = std::move(graph);
  built.oracle = make_distance_oracle(built.graph);
  built.hierarchy = GeneralHierarchy::build(built.graph, *built.oracle, {});
  return built;
}

TEST(GeneralHierarchy, TopLevelSingleRoot) {
  const Built b = build(make_grid(6, 6));
  const int h = b.hierarchy->height();
  EXPECT_GE(h, 2);
  EXPECT_EQ(b.hierarchy->members(h).size(), 1u);
  EXPECT_EQ(b.hierarchy->members(h)[0], b.hierarchy->root());
}

TEST(GeneralHierarchy, GroupsNonEmptyEverywhere) {
  const Built b = build(make_ring(24));
  for (NodeId u = 0; u < b.graph.num_nodes(); ++u) {
    for (int level = 0; level <= b.hierarchy->height(); ++level) {
      EXPECT_FALSE(b.hierarchy->group(u, level).empty());
    }
  }
}

TEST(GeneralHierarchy, Level0IsSelf) {
  const Built b = build(make_grid(4, 4));
  for (NodeId u = 0; u < b.graph.num_nodes(); ++u) {
    const auto group = b.hierarchy->group(u, 0);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], u);
  }
}

// Lemma 6.1 analogue: groups of u and v intersect at the covering level.
TEST(GeneralHierarchy, GroupsMeetAtLogDistance) {
  const Built b = build(make_grid(8, 8));
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const auto u = static_cast<NodeId>(rng.below(b.graph.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(b.graph.num_nodes()));
    if (u == v) continue;
    const Weight dist = b.oracle->distance(u, v);
    const int meet_level =
        std::min(b.hierarchy->height(),
                 std::max(1, static_cast<int>(std::ceil(std::log2(dist)))));
    bool met = false;
    for (int level = 1; level <= meet_level && !met; ++level) {
      const auto gu = b.hierarchy->group(u, level);
      const auto gv = b.hierarchy->group(v, level);
      for (const NodeId x : gu) {
        if (std::find(gv.begin(), gv.end(), x) != gv.end()) {
          met = true;
          break;
        }
      }
    }
    EXPECT_TRUE(met) << "u=" << u << " v=" << v << " dist=" << dist;
  }
}

TEST(GeneralHierarchy, PrimaryIsFirstGroupMember) {
  const Built b = build(make_grid(5, 5));
  for (NodeId u = 0; u < b.graph.num_nodes(); u += 3) {
    for (int level = 1; level <= b.hierarchy->height(); ++level) {
      EXPECT_EQ(b.hierarchy->primary(u, level),
                b.hierarchy->group(u, level).front());
    }
  }
}

TEST(GeneralHierarchy, ClusterLookupByLeader) {
  const Built b = build(make_grid(6, 6));
  for (int level = 1; level <= b.hierarchy->height(); ++level) {
    for (const NodeId leader : b.hierarchy->members(level)) {
      const auto cluster = b.hierarchy->cluster(level, leader);
      EXPECT_TRUE(
          std::binary_search(cluster.begin(), cluster.end(), leader));
    }
  }
}

TEST(GeneralHierarchy, WorksOnStarAndLollipop) {
  const Built star = build(make_star(40));
  EXPECT_EQ(star.hierarchy->members(star.hierarchy->height()).size(), 1u);

  const Built lollipop = build(make_lollipop(8, 24));
  EXPECT_EQ(
      lollipop.hierarchy->members(lollipop.hierarchy->height()).size(),
      1u);
}

TEST(GeneralHierarchy, AverageOverlapLogarithmic) {
  const Built b = build(make_grid(8, 8));
  for (int level = 1; level <= b.hierarchy->height(); ++level) {
    EXPECT_LE(b.hierarchy->average_overlap(level), 14.0)
        << "level " << level;
  }
}

}  // namespace
}  // namespace mot
