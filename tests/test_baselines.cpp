#include "baselines/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "baselines/tree_tracker.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_path.hpp"

namespace mot {
namespace {

EdgeRates uniform_rates(const Graph& graph) {
  EdgeRates rates;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Edge& e : graph.neighbors(v)) {
      if (e.to > v) rates.record(v, e.to, 1.0);
    }
  }
  return rates;
}

EdgeRates varied_rates(const Graph& graph) {
  EdgeRates rates;
  Rng rng(7);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Edge& e : graph.neighbors(v)) {
      if (e.to > v) rates.record(v, e.to, 1.0 + rng.below(10));
    }
  }
  return rates;
}

TEST(EdgeRates, SymmetricAndAccumulating) {
  EdgeRates rates;
  rates.record(3, 7, 2.0);
  rates.record(7, 3, 1.0);
  EXPECT_DOUBLE_EQ(rates.rate(3, 7), 3.0);
  EXPECT_DOUBLE_EQ(rates.rate(7, 3), 3.0);
  EXPECT_DOUBLE_EQ(rates.rate(1, 2), 0.0);
  EXPECT_EQ(rates.distinct_edges(), 1u);
}

TEST(ChooseSink, GridCenter) {
  const Graph g = make_grid(5, 5);
  EXPECT_EQ(choose_sink(g), 12u);  // the exact center of a 5x5 grid
}

TEST(ChooseSink, NoPositionsUsesEccentricity) {
  const Graph g = make_star(9);
  EXPECT_EQ(choose_sink(g), 0u);  // hub has minimum eccentricity
}

TEST(SpanningTreeStruct, ValidityChecks) {
  SpanningTree tree;
  tree.root = 0;
  tree.parent = {0, 0, 1};
  recompute_depths(tree);
  EXPECT_TRUE(tree.is_valid());
  EXPECT_EQ(tree.depth[2], 2);
  EXPECT_EQ(tree.max_depth, 2);

  SpanningTree broken;
  broken.root = 0;
  broken.parent = {1, 0};  // root's parent is not itself
  EXPECT_FALSE(broken.is_valid());
}

TEST(Dat, IsDeviationAvoiding) {
  // DAT invariant: tree distance to the sink equals graph distance.
  const Graph g = make_grid(7, 7);
  const NodeId sink = choose_sink(g);
  const SpanningTree tree = build_dat(g, varied_rates(g), sink);
  ASSERT_TRUE(tree.is_valid());
  const ShortestPathTree from_sink = dijkstra(g, sink);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Weight tree_dist = 0.0;
    NodeId at = v;
    while (at != sink) {
      tree_dist += g.edge_weight(at, tree.parent[at]);
      at = tree.parent[at];
    }
    EXPECT_DOUBLE_EQ(tree_dist, from_sink.distance[v]) << "node " << v;
  }
}

TEST(Dat, PrefersHighRateParents) {
  // Node at (1,1) of a 3x3 grid with sink at center? Use a path where
  // the rate decides between two shortest-path parents.
  const Graph g = make_grid(3, 3);
  EdgeRates rates;
  // Node 8 (corner) has shortest-path parents 5 and 7 toward sink 4.
  rates.record(8, 5, 10.0);
  rates.record(8, 7, 1.0);
  const SpanningTree tree = build_dat(g, rates, 4);
  EXPECT_EQ(tree.parent[8], 5u);

  EdgeRates flipped;
  flipped.record(8, 5, 1.0);
  flipped.record(8, 7, 10.0);
  const SpanningTree tree2 = build_dat(g, flipped, 4);
  EXPECT_EQ(tree2.parent[8], 7u);
}

TEST(Zdat, IsDeviationAvoidingTreeOverGridEdges) {
  const Graph g = make_grid(8, 8);
  const NodeId sink = choose_sink(g);
  const auto oracle = make_distance_oracle(g);
  const SpanningTree tree = build_zdat(g, *oracle, sink);
  ASSERT_TRUE(tree.is_valid());
  const ShortestPathTree from_sink = dijkstra(g, sink);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == sink) continue;
    // Parent is a graph neighbor one step closer to the sink.
    EXPECT_NE(g.edge_weight(v, tree.parent[v]), kInfiniteDistance);
    EXPECT_DOUBLE_EQ(from_sink.distance[tree.parent[v]],
                     from_sink.distance[v] - 1.0);
  }
}

TEST(Zdat, DistinctFromDatOnTies) {
  // Both are deviation-avoiding, but Z-DAT picks zone-local parents while
  // DAT picks rate-heavy parents; with uniform rates they usually differ
  // somewhere on a big grid.
  const Graph g = make_grid(10, 10);
  const NodeId sink = choose_sink(g);
  const auto oracle = make_distance_oracle(g);
  const SpanningTree zdat = build_zdat(g, *oracle, sink);
  const SpanningTree dat = build_dat(g, uniform_rates(g), sink);
  int differences = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (zdat.parent[v] != dat.parent[v]) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(StunDendrogram, StructureAndHosting) {
  const Graph g = make_grid(6, 6);
  const NodeId sink = choose_sink(g);
  const Dendrogram dendrogram =
      build_stun_dendrogram(g, varied_rates(g), sink);
  ASSERT_TRUE(dendrogram.is_valid());
  EXPECT_EQ(dendrogram.num_sensors, 36u);
  // A full binary merge tree has exactly n - 1 internal nodes.
  EXPECT_EQ(dendrogram.nodes.size(), 2u * 36 - 1);
  // The root is hosted at the sink.
  EXPECT_EQ(dendrogram.nodes[dendrogram.root].host, sink);
  // Leaves host themselves.
  for (NodeId v = 0; v < 36; ++v) {
    EXPECT_EQ(dendrogram.nodes[v].host, v);
  }
  // Balanced pairing keeps depth ~ buckets x log2(class size), far from
  // the O(n) a chain merge would produce.
  EXPECT_LE(dendrogram.max_depth(), 24);
}

TEST(StunDendrogram, DeterministicForSameRates) {
  const Graph g = make_grid(5, 5);
  const EdgeRates rates = varied_rates(g);
  const Dendrogram a = build_stun_dendrogram(g, rates, 12);
  const Dendrogram b = build_stun_dendrogram(g, rates, 12);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
    EXPECT_EQ(a.nodes[i].host, b.nodes[i].host);
  }
}

TEST(StunTracker, TracksThroughDendrogram) {
  const Graph g = make_grid(6, 6);
  const CachedDistanceOracle oracle(g);
  StunTracker tracker(oracle,
                      build_stun_dendrogram(g, varied_rates(g), 14));
  tracker.publish(0, 0);
  Rng rng(5);
  NodeId at = 0;
  for (int i = 0; i < 60; ++i) {
    const auto neighbors = g.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    tracker.move(0, at);
    tracker.chain().validate(0);
  }
  EXPECT_EQ(tracker.proxy_of(0), at);
  EXPECT_EQ(tracker.query(35, 0).proxy, at);
}

TEST(StunTracker, RootHostStoresEveryObject) {
  const Graph g = make_grid(6, 6);
  const CachedDistanceOracle oracle(g);
  const NodeId sink = choose_sink(g);
  StunTracker tracker(oracle,
                      build_stun_dendrogram(g, uniform_rates(g), sink));
  for (ObjectId o = 0; o < 30; ++o) {
    tracker.publish(o, static_cast<NodeId>((o * 5) % 36));
  }
  const auto load = tracker.load_per_node();
  // The sink hosts the root's detection set: at least one entry per
  // object lives there.
  EXPECT_GE(load[sink], 30u);
}

TEST(TreeTracker, ZdatTracksAndAnswers) {
  const Graph g = make_grid(6, 6);
  const CachedDistanceOracle oracle(g);
  const auto grid_oracle = make_distance_oracle(g);
  TreeTracker tracker("Z-DAT", oracle,
                      build_zdat(g, *grid_oracle, choose_sink(g)), false);
  tracker.publish(0, 3);
  tracker.publish(1, 32);
  tracker.move(0, 4);
  tracker.move(1, 31);
  tracker.chain().validate_all();
  EXPECT_EQ(tracker.query(0, 0).proxy, 4u);
  EXPECT_EQ(tracker.query(0, 1).proxy, 31u);
}

TEST(TreeTracker, ShortcutNeverCostsMoreOnQueries) {
  const Graph g = make_grid(8, 8);
  const CachedDistanceOracle oracle(g);
  const auto grid_oracle = make_distance_oracle(g);
  const NodeId sink = choose_sink(g);
  SpanningTree tree = build_zdat(g, *grid_oracle, sink);
  SpanningTree tree_copy = tree;
  TreeTracker plain("Z-DAT", oracle, std::move(tree), false);
  TreeTracker shortcut("Z-DAT+SC", oracle, std::move(tree_copy), true);

  Rng rng(3);
  NodeId at = 0;
  plain.publish(0, 0);
  shortcut.publish(0, 0);
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = g.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    plain.move(0, at);
    shortcut.move(0, at);
  }
  for (NodeId from = 0; from < 64; from += 5) {
    const QueryResult a = plain.query(from, 0);
    const QueryResult b = shortcut.query(from, 0);
    EXPECT_EQ(a.proxy, b.proxy);
    EXPECT_LE(b.cost, a.cost + 1e-9);
  }
}

TEST(Baselines, WorkOnRingNetworks) {
  // Rings are the paper's example of spanning-tree weakness: the tree
  // must cut the cycle somewhere and pay O(D) for moves across the cut.
  const Graph ring = make_ring(32);
  const CachedDistanceOracle oracle(ring);
  const NodeId sink = choose_sink(ring);
  TreeTracker dat("DAT", oracle, build_dat(ring, uniform_rates(ring), sink),
                  false);
  dat.publish(0, 0);
  Weight total = 0.0;
  // Walk the full ring: crossing the tree cut costs ~D.
  for (NodeId to = 1; to < 32; ++to) total += dat.move(0, to).cost;
  total += dat.move(0, 0).cost;
  // Optimal total is 32 (one hop each); the tree pays extra every time
  // the walk crosses the edge the spanning tree had to cut (~D extra).
  EXPECT_GT(total, 32.0 + 16.0 - 2.0);
}

}  // namespace
}  // namespace mot
