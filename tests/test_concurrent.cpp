#include "core/concurrent.hpp"

#include <gtest/gtest.h>

#include "baselines/tree_tracker.hpp"
#include "core/mot.hpp"
#include "expt/experiment.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"

namespace mot {
namespace {

struct Fixture {
  explicit Fixture(std::size_t side = 8, std::uint64_t seed = 7)
      : graph(make_grid(side, side)), oracle(make_distance_oracle(graph)) {
    DoublingHierarchy::Params hier_params;
    hier_params.seed = seed;
    hierarchy = DoublingHierarchy::build(graph, *oracle, hier_params);
    MotOptions options;
    options.use_parent_sets = false;
    provider = std::make_unique<MotPathProvider>(*hierarchy, options);
    chain_options = make_mot_chain_options(options);
  }

  Graph graph;
  std::unique_ptr<DistanceOracle> oracle;
  std::unique_ptr<DoublingHierarchy> hierarchy;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

TEST(ConcurrentEngine, SingleMoveMatchesSequentialCost) {
  const Fixture fx;
  // Sequential reference.
  ChainTracker sequential("seq", *fx.provider, fx.chain_options);
  sequential.publish(0, 10);
  const MoveResult expected = sequential.move(0, 11);

  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 10);
  MoveResult actual;
  bool done = false;
  engine.start_move(0, 11, [&](const MoveResult& r) {
    actual = r;
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_DOUBLE_EQ(actual.cost, expected.cost);
  EXPECT_EQ(actual.peak_level, expected.peak_level);
  engine.validate_quiescent();
}

TEST(ConcurrentEngine, SingleQueryMatchesSequentialCost) {
  const Fixture fx;
  ChainTracker sequential("seq", *fx.provider, fx.chain_options);
  sequential.publish(0, 10);
  sequential.move(0, 30);
  const QueryResult expected = sequential.query(60, 0);

  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 10);
  engine.start_move(0, 30, {});
  sim.run();
  QueryResult actual;
  engine.start_query(60, 0, [&](const QueryResult& r) { actual = r; });
  sim.run();
  EXPECT_TRUE(actual.found);
  EXPECT_EQ(actual.proxy, expected.proxy);
  EXPECT_DOUBLE_EQ(actual.cost, expected.cost);
}

TEST(ConcurrentEngine, MoveToSamePlaceCompletesImmediately) {
  const Fixture fx;
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 5);
  bool done = false;
  engine.start_move(0, 5, [&](const MoveResult& r) {
    EXPECT_DOUBLE_EQ(r.cost, 0.0);
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.inflight_operations(), 0u);
}

TEST(ConcurrentEngine, OverlappingMovesSameObjectKeepChain) {
  const Fixture fx;
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 0);
  // A burst of ten overlapping moves along a walk.
  const NodeId walk[] = {1, 2, 10, 11, 12, 20, 21, 29, 37, 38};
  int completed = 0;
  for (const NodeId to : walk) {
    engine.start_move(0, to, [&](const MoveResult&) { ++completed; });
  }
  EXPECT_EQ(engine.physical_position(0), 38u);
  sim.run();
  EXPECT_EQ(completed, 10);
  engine.validate_quiescent();
}

TEST(ConcurrentEngine, MovesCompleteInIssueOrder) {
  const Fixture fx;
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 0);
  std::vector<int> order;
  engine.start_move(0, 8, [&](const MoveResult&) { order.push_back(1); });
  engine.start_move(0, 16, [&](const MoveResult&) { order.push_back(2); });
  engine.start_move(0, 24, [&](const MoveResult&) { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ConcurrentEngine, QueryDuringMoveEventuallySucceeds) {
  const Fixture fx;
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 0);
  // Start a long move, immediately query from near the OLD location: the
  // query may land on the stale proxy and must be forwarded.
  engine.start_move(0, 63, {});
  QueryResult result;
  engine.start_query(1, 0, [&](const QueryResult& r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.proxy, 63u);
  engine.validate_quiescent();
}

TEST(ConcurrentEngine, ManyObjectsManyMovesQuiesceValid) {
  const Fixture fx(8, 5);
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  Rng rng(3);
  std::vector<NodeId> at(20);
  for (ObjectId o = 0; o < 20; ++o) {
    at[o] = static_cast<NodeId>(rng.below(64));
    engine.publish(o, at[o]);
  }
  int completed = 0;
  for (int round = 0; round < 15; ++round) {
    for (ObjectId o = 0; o < 20; ++o) {
      const auto neighbors = fx.graph.neighbors(at[o]);
      at[o] = neighbors[rng.below(neighbors.size())].to;
      engine.start_move(o, at[o], [&](const MoveResult&) { ++completed; });
    }
  }
  sim.run();
  EXPECT_EQ(completed, 15 * 20);
  engine.validate_quiescent();
  for (ObjectId o = 0; o < 20; ++o) {
    EXPECT_EQ(engine.physical_position(o), at[o]);
  }
}

TEST(ConcurrentEngine, StatsTrackWaitsAndForwards) {
  const Fixture fx;
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 0);
  engine.start_move(0, 63, {});
  // Query straight at the stale proxy: it must wait for the delete.
  engine.start_query(0, 0, {});
  sim.run();
  const ConcurrentStats& stats = engine.stats();
  EXPECT_EQ(stats.moves_completed, 1u);
  EXPECT_EQ(stats.queries_completed, 1u);
  EXPECT_GE(stats.query_waits + stats.query_restarts, 1u);
}

TEST(ConcurrentEngine, WorksOverTreeProviders) {
  const Graph graph = make_grid(6, 6);
  const CachedDistanceOracle oracle(graph);
  EdgeRates rates;
  const NodeId sink = choose_sink(graph);
  SpanningTree tree = build_dat(graph, rates, sink);
  TreePathProvider provider(oracle, std::move(tree));
  ChainOptions options;

  Simulator sim;
  ConcurrentEngine engine(provider, sim, options);
  engine.publish(0, 0);
  Rng rng(9);
  NodeId at = 0;
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    const auto neighbors = graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    engine.start_move(0, at, [&](const MoveResult&) { ++completed; });
    if (i % 5 == 0) {
      engine.start_query(static_cast<NodeId>(rng.below(36)), 0,
                         [&](const QueryResult& r) {
                           EXPECT_TRUE(r.found);
                         });
    }
  }
  sim.run();
  EXPECT_EQ(completed, 40);
  engine.validate_quiescent();
  EXPECT_EQ(engine.physical_position(0), at);
}

TEST(ConcurrentEngine, WorksOverDendrogramProvider) {
  const Graph graph = make_grid(6, 6);
  const CachedDistanceOracle oracle(graph);
  EdgeRates rates;
  for (NodeId v = 0; v < 36; ++v) {
    for (const Edge& e : graph.neighbors(v)) {
      if (e.to > v) rates.record(v, e.to, (v * 7 + e.to) % 5 + 1);
    }
  }
  Dendrogram dendrogram =
      build_stun_dendrogram(graph, rates, choose_sink(graph));
  DendrogramProvider provider(oracle, std::move(dendrogram));

  Simulator sim;
  ConcurrentEngine engine(provider, sim, {});
  engine.publish(0, 10);
  int completed = 0;
  for (const NodeId to : {11u, 12u, 13u, 14u, 20u}) {
    engine.start_move(0, to, [&](const MoveResult&) { ++completed; });
  }
  engine.start_query(35, 0, [&](const QueryResult& r) {
    EXPECT_TRUE(r.found);
  });
  sim.run();
  EXPECT_EQ(completed, 5);
  engine.validate_quiescent();
}

TEST(ConcurrentEngine, ConcurrentCostAtLeastSequential) {
  // Overlap can only add probing over stale state, never reduce cost.
  const Fixture fx(8, 13);
  const NodeId walk[] = {1, 2, 3, 11, 19, 27, 26, 25, 33, 41};

  ChainTracker sequential("seq", *fx.provider, fx.chain_options);
  sequential.publish(0, 0);
  Weight seq_cost = 0.0;
  for (const NodeId to : walk) seq_cost += sequential.move(0, to).cost;

  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 0);
  Weight conc_cost = 0.0;
  for (const NodeId to : walk) {
    engine.start_move(0, to,
                      [&](const MoveResult& r) { conc_cost += r.cost; });
  }
  sim.run();
  engine.validate_quiescent();
  EXPECT_GE(conc_cost, seq_cost - 1e-9);
}

TEST(ConcurrentEngine, ForwardingPointersRedirectTornQueries) {
  // Section 3's improved algorithm: with forwarding pointers on, a query
  // whose descent is torn redirects straight to the new location instead
  // of re-climbing. Compare both configurations on the same workload.
  ConcurrentStats with_stats;
  ConcurrentStats without_stats;
  for (const bool forwarding : {false, true}) {
    const Fixture fx(4, 7);  // a small dense grid maximizes torn descents
    ChainOptions options = fx.chain_options;
    options.forwarding_pointers = forwarding;
    Simulator sim;
    ConcurrentEngine engine(*fx.provider, sim, options);
    engine.publish(0, 0);
    Rng rng(13);
    NodeId at = 0;
    for (int burst = 0; burst < 80; ++burst) {
      for (int k = 0; k < 8; ++k) {
        const auto neighbors = fx.graph.neighbors(at);
        at = neighbors[rng.below(neighbors.size())].to;
        engine.start_move(0, at, {});
      }
      for (int q = 0; q < 4; ++q) {
        engine.start_query(static_cast<NodeId>(rng.below(16)), 0,
                           [&](const QueryResult& r) {
                             ASSERT_TRUE(r.found);
                           });
      }
      sim.run();
      engine.validate_quiescent();
    }
    (forwarding ? with_stats : without_stats) = engine.stats();
  }
  EXPECT_EQ(without_stats.query_pointer_redirects, 0u);
  EXPECT_GT(with_stats.query_pointer_redirects, 0u);
  // Redirects replace restarts one for one where they fire.
  EXPECT_LE(with_stats.query_restarts, without_stats.query_restarts);
}

TEST(RunConcurrent, DriverReplaysTraceAndValidates) {
  const Network net = build_grid_network(64, 11);
  TraceParams tp;
  tp.num_objects = 12;
  tp.moves_per_object = 25;
  Rng rng(3);
  const MovementTrace trace = generate_trace(net.graph(), tp, rng);
  const EdgeRates rates = trace.estimate_rates();
  const AlgoInstance algo = make_algo(Algo::kMot, net, rates, 11);

  ConcurrentRunParams params;
  params.batch_size = 10;
  params.interleave_queries = true;
  params.seed = 99;
  const ConcurrentRunResult result = run_concurrent(
      *algo.provider, algo.chain_options, *net.oracle, trace, params);
  EXPECT_EQ(result.maintenance.count() + result.maintenance.zero_optimal_count(),
            trace.moves.size());
  // One query per object (those with zero distance are counted separately).
  EXPECT_EQ(result.queries.count() + result.queries.zero_optimal_count(),
            tp.num_objects);
  EXPECT_GE(result.maintenance.aggregate_ratio(), 1.0);
}

}  // namespace
}  // namespace mot
