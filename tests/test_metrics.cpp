#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

namespace mot {
namespace {

TEST(CostRatioAccumulator, AggregateRatio) {
  CostRatioAccumulator acc;
  acc.add(10.0, 2.0);
  acc.add(6.0, 2.0);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.total_measured(), 16.0);
  EXPECT_DOUBLE_EQ(acc.total_optimal(), 4.0);
  EXPECT_DOUBLE_EQ(acc.aggregate_ratio(), 4.0);
}

TEST(CostRatioAccumulator, ZeroOptimalExcluded) {
  CostRatioAccumulator acc;
  acc.add(5.0, 0.0);
  acc.add(4.0, 2.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.zero_optimal_count(), 1u);
  EXPECT_DOUBLE_EQ(acc.aggregate_ratio(), 2.0);
}

TEST(CostRatioAccumulator, EmptyIsZero) {
  const CostRatioAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.aggregate_ratio(), 0.0);
  EXPECT_EQ(acc.count(), 0u);
}

TEST(CostRatioAccumulator, PerOpDistribution) {
  CostRatioAccumulator acc;
  acc.add(2.0, 1.0);
  acc.add(8.0, 2.0);
  acc.add(3.0, 3.0);
  const SampleSet& ratios = acc.per_op_ratios();
  EXPECT_EQ(ratios.count(), 3u);
  EXPECT_DOUBLE_EQ(ratios.min(), 1.0);
  EXPECT_DOUBLE_EQ(ratios.max(), 4.0);
}

TEST(SummarizeLoad, BasicStatistics) {
  const std::vector<std::size_t> load = {0, 1, 2, 3, 14};
  const LoadSummary summary = summarize_load(load, 10);
  EXPECT_EQ(summary.num_nodes, 5u);
  EXPECT_EQ(summary.total_entries, 20u);
  EXPECT_DOUBLE_EQ(summary.mean, 4.0);
  EXPECT_EQ(summary.max, 14u);
  EXPECT_EQ(summary.nodes_above_threshold, 1u);
  EXPECT_DOUBLE_EQ(summary.imbalance, 3.5);
}

TEST(SummarizeLoad, EmptyLoad) {
  const LoadSummary summary = summarize_load({}, 10);
  EXPECT_EQ(summary.num_nodes, 0u);
  EXPECT_EQ(summary.total_entries, 0u);
}

TEST(SummarizeLoad, ThresholdIsStrict) {
  const std::vector<std::size_t> load = {10, 10, 11};
  const LoadSummary summary = summarize_load(load, 10);
  EXPECT_EQ(summary.nodes_above_threshold, 1u);  // strictly greater
}

TEST(LoadHistogram, FormatsBins) {
  EXPECT_EQ(load_histogram({1, 1, 3}), "1:2 3:1 ");
  EXPECT_EQ(load_histogram({0}), "0:1 ");
}

TEST(SummarizeReliability, RatesAndOverheads) {
  ReliabilityInputs in;
  in.data_sent = 100;
  in.retransmissions = 25;
  in.acks_sent = 120;
  in.duplicates_suppressed = 20;
  in.ack_rtt_sum = 60.0;
  in.ack_rtt_count = 100;
  in.useful_distance = 400.0;
  in.transport_distance = 100.0;
  in.recovery_distance = 40.0;
  const ReliabilitySummary summary = summarize_reliability(in);
  EXPECT_DOUBLE_EQ(summary.retransmission_rate, 0.25);
  EXPECT_DOUBLE_EQ(summary.duplicate_rate, 20.0 / 120.0);
  EXPECT_DOUBLE_EQ(summary.mean_ack_rtt, 0.6);
  EXPECT_DOUBLE_EQ(summary.transport_overhead, 0.25);
  EXPECT_DOUBLE_EQ(summary.recovery_overhead, 0.1);
}

TEST(SummarizeReliability, EmptyInputsYieldZeros) {
  const ReliabilitySummary summary = summarize_reliability({});
  EXPECT_DOUBLE_EQ(summary.retransmission_rate, 0.0);
  EXPECT_DOUBLE_EQ(summary.duplicate_rate, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean_ack_rtt, 0.0);
  EXPECT_DOUBLE_EQ(summary.transport_overhead, 0.0);
  EXPECT_DOUBLE_EQ(summary.recovery_overhead, 0.0);
}

TEST(SummarizeReliability, ZeroDataSentWithOtherCountersStaysFinite) {
  // Transport activity without any DATA frames (e.g. a run that only
  // exchanged ACKs before being cut short) must not divide by zero.
  ReliabilityInputs in;
  in.retransmissions = 5;
  in.acks_sent = 10;
  in.duplicates_suppressed = 2;
  in.transport_distance = 30.0;
  const ReliabilitySummary summary = summarize_reliability(in);
  EXPECT_DOUBLE_EQ(summary.retransmission_rate, 0.0);
  EXPECT_DOUBLE_EQ(summary.duplicate_rate, 0.2);
  EXPECT_DOUBLE_EQ(summary.transport_overhead, 0.0);  // no useful work
}

TEST(SummarizeReliability, ChannelConservationLedgerIdentity) {
  // Every copy the channel mints (transmissions + duplications) must
  // resolve exactly once: delivered, dropped, lost some other way, or
  // still in flight. Pin the identity and its delivery-rate companion.
  ReliabilityInputs in;
  in.channel_copies_created = 100;
  in.channel_delivered = 80;
  in.channel_dropped = 12;
  in.channel_lost_other = 5;
  in.channel_in_flight = 3;
  ReliabilitySummary summary = summarize_reliability(in);
  EXPECT_TRUE(summary.channel_conserved);
  EXPECT_DOUBLE_EQ(summary.channel_delivery_rate, 0.8);

  in.channel_delivered = 81;  // one copy double-counted
  EXPECT_FALSE(summarize_reliability(in).channel_conserved);

  in.channel_delivered = 80;
  in.channel_in_flight = 2;  // one copy leaked
  EXPECT_FALSE(summarize_reliability(in).channel_conserved);

  // Vacuously conserved with no channel traffic at all.
  EXPECT_TRUE(summarize_reliability({}).channel_conserved);
  EXPECT_DOUBLE_EQ(summarize_reliability({}).channel_delivery_rate, 0.0);
}

TEST(LoadHistogram, EmptyLoadVector) {
  EXPECT_EQ(load_histogram({}), "");
}

TEST(LoadHistogram, AllZeroLoads) {
  EXPECT_EQ(load_histogram({0, 0, 0, 0}), "0:4 ");
}

TEST(SummarizeLoad, AllZeroLoadsHaveZeroImbalance) {
  const std::vector<std::size_t> load = {0, 0, 0};
  const LoadSummary summary = summarize_load(load, 10);
  EXPECT_EQ(summary.num_nodes, 3u);
  EXPECT_EQ(summary.total_entries, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
  EXPECT_EQ(summary.max, 0u);
  EXPECT_DOUBLE_EQ(summary.p99, 0.0);
  EXPECT_EQ(summary.nodes_above_threshold, 0u);
  EXPECT_DOUBLE_EQ(summary.imbalance, 0.0);  // not NaN
}

}  // namespace
}  // namespace mot
