// micro_wire: encode/decode throughput of the versioned wire codec.
//
// For every proto::MsgType, builds a deterministic pool of
// randomly-populated messages (the same default-omission mix the wire
// fuzz tests use), then times tight encode and decode loops and reports
// per-type throughput in messages/s and MB/s. A final "all-types" row
// aggregates the mixed workload a real shard sees. Emits through the
// common bench telemetry, so `--emit-json BENCH_wire.json` records the
// run.
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "micro_common.hpp"
#include "proto/messages.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "wire/message_codec.hpp"

namespace {

using mot::NodeId;
using mot::ObjectId;
using mot::Rng;

// Same population mix as the round-trip fuzz in tests/test_wire.cpp:
// every field present with its own probability, so the timed bytes show
// the default-omission rule working (not maximally-dense frames).
mot::proto::Message random_message(Rng& rng, mot::proto::MsgType type) {
  mot::proto::Message m;
  m.type = type;
  if (rng.chance(0.9)) m.object = static_cast<ObjectId>(rng() % 10000);
  if (rng.chance(0.9)) {
    m.role = {static_cast<int>(rng.uniform_int(-2, 40)),
              static_cast<NodeId>(rng() % 100000)};
  }
  if (rng.chance(0.7)) m.walk_source = static_cast<NodeId>(rng() % 100000);
  if (rng.chance(0.7)) m.walk_index = static_cast<std::uint32_t>(rng() % 64);
  if (rng.chance(0.6)) {
    m.link = {static_cast<int>(rng.uniform_int(-2, 40)),
              static_cast<NodeId>(rng() % 100000)};
  }
  if (rng.chance(0.5)) m.new_proxy = static_cast<NodeId>(rng() % 100000);
  if (rng.chance(0.5)) m.requester = static_cast<NodeId>(rng() % 100000);
  if (rng.chance(0.5)) m.query_id = rng() % 1000000;
  if (rng.chance(0.3)) m.degraded = true;
  if (rng.chance(0.3)) m.staleness = rng.uniform(0.0, 1e6);
  if (rng.chance(0.5)) m.op_cost = rng.uniform(0.0, 1e6);
  if (rng.chance(0.5)) {
    m.op_peak = static_cast<std::int32_t>(rng.uniform_int(-1, 40));
  }
  return m;
}

struct Timed {
  double seconds = 0.0;  // trimmed-mean wall seconds for one round
  std::uint64_t bytes = 0;   // bytes through one round
  std::uint64_t frames = 0;  // frames through one round
};

// Times each round separately and reports the shared trimmed-mean
// estimator over rounds, so a scheduler spike mid-run cannot smear the
// whole figure the way one aggregate stopwatch would.
template <typename Body>
Timed time_loop(int rounds, std::size_t frames_per_round, Body&& body) {
  Timed timed;
  timed.seconds = mot::bench::repeat_trimmed(rounds, [&](int) {
    const auto start = std::chrono::steady_clock::now();
    timed.bytes = body();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
  });
  timed.frames = frames_per_round;
  return timed;
}

void add_row(mot::Table& table, const std::string& label,
             const Timed& encode, const Timed& decode) {
  const double avg_bytes =
      static_cast<double>(encode.bytes) / static_cast<double>(encode.frames);
  table.begin_row()
      .cell(label)
      .cell(avg_bytes, 1)
      .cell(static_cast<double>(encode.frames) / encode.seconds / 1e6, 2)
      .cell(static_cast<double>(encode.bytes) / encode.seconds / 1e6, 1)
      .cell(static_cast<double>(decode.frames) / decode.seconds / 1e6, 2)
      .cell(static_cast<double>(decode.bytes) / decode.seconds / 1e6, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const mot::bench::CommonFlags common = mot::bench::parse_common(
      argc, argv,
      "wire codec throughput: encode/decode per message type");

  const std::size_t pool_size = common.full ? 4096 : 1024;
  const int rounds = common.full ? 400 : 100;

  mot::SeedTree seeds(common.base_seed);
  mot::Table table({"type", "bytes/msg", "enc Mmsg/s", "enc MB/s",
                    "dec Mmsg/s", "dec MB/s"});

  // Mixed-type pool for the aggregate row, filled as we go.
  std::vector<mot::wire::MessageFrame> mixed;

  for (std::uint8_t t = 0; t < mot::proto::kNumMsgTypes; ++t) {
    const auto type = static_cast<mot::proto::MsgType>(t);
    Rng rng = seeds.stream("wire-bench", t);
    std::vector<mot::wire::MessageFrame> pool(pool_size);
    for (mot::wire::MessageFrame& frame : pool) {
      frame.message = random_message(rng, type);
      frame.from = static_cast<NodeId>(rng() % 100000);
    }
    mixed.insert(mixed.end(), pool.begin(),
                 pool.begin() + static_cast<std::ptrdiff_t>(pool_size /
                                                            mot::proto::
                                                                kNumMsgTypes));

    const Timed encode = time_loop(rounds, pool.size(), [&] {
      std::uint64_t bytes = 0;
      for (const mot::wire::MessageFrame& frame : pool) {
        bytes += mot::wire::encode_message_frame(frame).size();
      }
      return bytes;
    });

    // Pre-encode once; the decode loop times split + decode only.
    std::vector<std::vector<std::uint8_t>> encoded;
    encoded.reserve(pool.size());
    for (const mot::wire::MessageFrame& frame : pool) {
      encoded.push_back(mot::wire::encode_message_frame(frame));
    }
    const Timed decode = time_loop(rounds, encoded.size(), [&] {
      std::uint64_t bytes = 0;
      for (const std::vector<std::uint8_t>& buffer : encoded) {
        std::span<const std::uint8_t> payload;
        std::size_t consumed = 0;
        MOT_CHECK(mot::wire::split_frame(buffer, &payload, &consumed) ==
                  mot::wire::DecodeError::kNone);
        mot::wire::MessageFrame out;
        MOT_CHECK(mot::wire::decode_message_frame(payload, &out) ==
                  mot::wire::DecodeError::kNone);
        bytes += buffer.size();
      }
      return bytes;
    });

    add_row(table, mot::proto::msg_type_name(type), encode, decode);
  }

  // The aggregate row mirrors a shard's real mix: every type interleaved.
  {
    const Timed encode = time_loop(rounds, mixed.size(), [&] {
      std::uint64_t bytes = 0;
      for (const mot::wire::MessageFrame& frame : mixed) {
        bytes += mot::wire::encode_message_frame(frame).size();
      }
      return bytes;
    });
    std::vector<std::vector<std::uint8_t>> encoded;
    encoded.reserve(mixed.size());
    for (const mot::wire::MessageFrame& frame : mixed) {
      encoded.push_back(mot::wire::encode_message_frame(frame));
    }
    const Timed decode = time_loop(rounds, encoded.size(), [&] {
      std::uint64_t bytes = 0;
      for (const std::vector<std::uint8_t>& buffer : encoded) {
        std::span<const std::uint8_t> payload;
        std::size_t consumed = 0;
        MOT_CHECK(mot::wire::split_frame(buffer, &payload, &consumed) ==
                  mot::wire::DecodeError::kNone);
        mot::wire::MessageFrame out;
        MOT_CHECK(mot::wire::decode_message_frame(payload, &out) ==
                  mot::wire::DecodeError::kNone);
        bytes += buffer.size();
      }
      return bytes;
    });
    add_row(table, "all-types", encode, decode);
  }

  mot::bench::emit("wire codec throughput", table, common);
  return 0;
}
