// Main() shim for the Google Benchmark micro benches: strips the
// repo-wide --log-level flag (benchmark::Initialize rejects flags it
// does not know) and applies it before running the registered benches.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/log.hpp"

namespace mot::bench {

inline int micro_main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg.rfind("--log-level=", 0) == 0) {
      value = arg.substr(std::string("--log-level=").size());
    } else if (arg == "--log-level" && i + 1 < argc) {
      value = argv[++i];
    } else {
      argv[kept++] = argv[i];
      continue;
    }
    const std::optional<LogLevel> level = parse_log_level(value);
    if (!level.has_value()) {
      std::fprintf(stderr, "unknown --log-level '%s'\n", value.c_str());
      return 1;
    }
    set_log_level(*level);
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mot::bench

#define MOT_MICRO_MAIN()                        \
  int main(int argc, char** argv) {             \
    return ::mot::bench::micro_main(argc, argv); \
  }
