// cluster_runner: shard a DistributedMot across N OS processes.
//
// The parent opens the coordinator's control listener, forks one worker
// process per shard (each builds the identical world from the shared
// seed, constructs its own Simulator + DistributedMot, and hands both to
// a netio::ShardWorker), then drives a publish/move/query workload over
// loopback TCP and checks every answer against a single-process
// DistributedMot on the same SeedTree seed — the end-to-end parity the
// wire subsystem promises. `--future-shard` makes every odd shard encode
// at kWireVersionFuture, turning the run into a mixed-version interop
// smoke: current peers must skip the unknown fields and parity must
// still hold bit-for-bit.
//
//   cluster_runner --shards 4 --steps 50 --emit-json BENCH_cluster.json
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "netio/cluster.hpp"
#include "netio/transport.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/channel_factory.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using mot::NodeId;
using mot::ObjectId;
using mot::Weight;

// The same deterministic world as tests/test_netio.cpp: every process
// that builds it from these parameters gets byte-identical structure,
// which the coordinator verifies via the world fingerprint at bootstrap.
struct World {
  explicit World(std::size_t side, std::uint64_t hierarchy_seed)
      : graph(mot::make_grid(side, side)),
        oracle(mot::make_distance_oracle(graph)) {
    mot::DoublingHierarchy::Params hp;
    hp.seed = hierarchy_seed;
    hierarchy = mot::DoublingHierarchy::build(graph, *oracle, hp);
    mot::MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<mot::MotPathProvider>(*hierarchy, options);
    chain_options = mot::make_mot_chain_options(options);
  }

  mot::Graph graph;
  std::unique_ptr<mot::DistanceOracle> oracle;
  std::unique_ptr<mot::DoublingHierarchy> hierarchy;
  std::unique_ptr<mot::MotPathProvider> provider;
  mot::ChainOptions chain_options;
};

struct WorkloadStep {
  NodeId move_to = mot::kInvalidNode;
  NodeId query_from = mot::kInvalidNode;
};

std::vector<WorkloadStep> make_workload(const World& world, NodeId start,
                                        int steps, std::uint64_t seed) {
  mot::SeedTree seeds(seed);
  mot::Rng rng = seeds.stream("cluster-workload");
  std::vector<WorkloadStep> workload;
  NodeId at = start;
  for (int i = 0; i < steps; ++i) {
    const auto neighbors = world.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    workload.push_back(
        {.move_to = at,
         .query_from =
             static_cast<NodeId>(rng.below(world.graph.num_nodes()))});
  }
  return workload;
}

// Child-process body: build the world, attach a ShardWorker, serve until
// Shutdown. The exit code is the worker's run() result, so the parent's
// waitpid sweep surfaces any protocol failure.
[[noreturn]] void run_worker(std::uint32_t shard, std::uint32_t num_shards,
                             std::uint16_t port, std::size_t side,
                             std::uint64_t hierarchy_seed,
                             bool future_shard) {
  const World world(side, hierarchy_seed);
  mot::Simulator sim;
  mot::proto::DistributedMot mot(*world.provider, sim, world.chain_options);
  mot::netio::WorkerConfig config;
  config.shard = shard;
  config.num_shards = num_shards;
  config.coordinator_port = port;
  if (future_shard && shard % 2 == 1) {
    config.encode_version = mot::wire::kWireVersionFuture;
  }
  mot::netio::ShardWorker worker(config, *world.provider, sim, mot);
  std::_Exit(worker.run());
}

}  // namespace

int main(int argc, char** argv) {
  // The socket transport registers like any other channel layer, so
  // sweeps can request it by name (`--channel socket` style drivers).
  mot::register_channel("socket", [] {
    return std::make_unique<mot::netio::SocketTransport>();
  });

  std::uint64_t shards = 4;
  std::uint64_t steps = 0;
  bool future_shard = false;
  mot::bench::CommonFlags common;
  {
    // parse_common consumes argv, so register the extra flags through
    // the same parser pass by pre-scanning: Flags has no extension hook,
    // hence the little strip-and-forward dance here.
    std::vector<char*> forwarded;
    forwarded.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shards" && i + 1 < argc) {
        shards = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--steps" && i + 1 < argc) {
        steps = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--future-shard") {
        future_shard = true;
      } else {
        forwarded.push_back(argv[i]);
      }
    }
    int forwarded_argc = static_cast<int>(forwarded.size());
    common = mot::bench::parse_common(
        forwarded_argc, forwarded.data(),
        "multi-process cluster: sharded DistributedMot vs single-process "
        "parity [--shards N] [--steps N] [--future-shard]");
  }
  if (shards < 1 || shards > 16) {
    std::fprintf(stderr, "--shards must be in [1, 16]\n");
    return 1;
  }
  const auto num_shards = static_cast<std::uint32_t>(shards);
  const std::size_t side = common.full ? 12 : 8;
  const int num_steps =
      steps != 0 ? static_cast<int>(steps) : (common.full ? 100 : 40);
  constexpr NodeId kStart = 12;
  constexpr ObjectId kObject = 0;

  mot::netio::ClusterCoordinator coordinator(num_shards);
  if (!coordinator.open()) {
    std::fprintf(stderr, "cannot open the coordinator listener\n");
    return 1;
  }
  const std::uint16_t port = coordinator.port();

  std::vector<pid_t> children;
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    const pid_t pid = fork();
    MOT_CHECK(pid >= 0);
    if (pid == 0) {
      run_worker(shard, num_shards, port, side, common.base_seed + 7,
                 future_shard);
    }
    children.push_back(pid);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  if (!coordinator.bootstrap()) {
    std::fprintf(stderr, "bootstrap failed (divergent worlds?)\n");
    coordinator.shutdown();
    for (const pid_t pid : children) waitpid(pid, nullptr, 0);
    return 1;
  }
  std::printf("cluster up: %u shards, wire v%u%s\n", num_shards,
              coordinator.negotiated_version(),
              future_shard ? " (odd shards encode from the future)" : "");

  // Single-process reference on the identical world and workload.
  const World world(side, common.base_seed + 7);
  mot::Simulator ref_sim;
  mot::proto::DistributedMot reference(*world.provider, ref_sim,
                                       world.chain_options);
  reference.publish(kObject, kStart);
  ref_sim.run();
  if (!coordinator.publish(kObject, kStart)) {
    std::fprintf(stderr, "cluster publish failed\n");
    return 1;
  }

  int mismatches = 0;
  Weight cluster_move_cost = 0.0;
  Weight cluster_query_cost = 0.0;
  int queries_found = 0;
  const std::vector<WorkloadStep> workload =
      make_workload(world, kStart, num_steps, common.base_seed ^ 0xc1u);
  for (const WorkloadStep& step : workload) {
    mot::MoveResult expected_move;
    reference.move(kObject, step.move_to,
                   [&](const mot::MoveResult& r) { expected_move = r; });
    ref_sim.run();
    const auto moved = coordinator.move(kObject, step.move_to);
    if (!moved.has_value()) {
      std::fprintf(stderr, "cluster move failed\n");
      return 1;
    }
    cluster_move_cost += moved->cost;
    if (moved->cost != expected_move.cost ||
        moved->peak_level != expected_move.peak_level) {
      ++mismatches;
    }

    mot::QueryResult expected_query;
    reference.query(step.query_from, kObject,
                    [&](const mot::QueryResult& r) { expected_query = r; });
    ref_sim.run();
    const auto answered = coordinator.query(step.query_from, kObject);
    if (!answered.has_value()) {
      std::fprintf(stderr, "cluster query failed\n");
      return 1;
    }
    cluster_query_cost += answered->cost;
    if (answered->found) ++queries_found;
    if (answered->found != expected_query.found ||
        answered->proxy != expected_query.proxy ||
        answered->cost != expected_query.cost ||
        answered->found_level != expected_query.found_level) {
      ++mismatches;
    }
  }

  // Global state parity: summed per-node storage and summed meters.
  double cluster_meter = 0.0;
  const std::vector<std::uint64_t> loads =
      coordinator.collect_loads(&cluster_meter);
  const std::vector<std::size_t> expected_loads = reference.load_per_node();
  bool loads_match = loads.size() == expected_loads.size();
  if (loads_match) {
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (loads[i] != expected_loads[i]) loads_match = false;
    }
  }
  if (!loads_match) ++mismatches;
  const double ref_meter = reference.meter().total_distance();
  // Each charge is identical across runtimes; only the summation grouping
  // differs per shard, so compare up to associativity rounding.
  if (std::abs(cluster_meter - ref_meter) > 1e-6 * (1.0 + ref_meter)) {
    ++mismatches;
  }

  coordinator.shutdown();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  int worker_failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++worker_failures;
  }

  mot::Table table({"shards", "steps", "wire", "moves cost", "queries cost",
                    "found", "parity", "workers", "seconds"});
  table.begin_row()
      .cell(static_cast<std::uint64_t>(num_shards))
      .cell(static_cast<std::uint64_t>(num_steps))
      .cell(std::string(future_shard ? "mixed" : "uniform"))
      .cell(cluster_move_cost, 3)
      .cell(cluster_query_cost, 3)
      .cell(static_cast<std::uint64_t>(queries_found))
      .cell(std::string(mismatches == 0 ? "exact" : "BROKEN"))
      .cell(std::string(worker_failures == 0 ? "clean" : "FAILED"))
      .cell(wall.count(), 3);
  mot::bench::emit("multi-process cluster parity", table, common);

  if (mismatches != 0) {
    std::fprintf(stderr, "%d parity mismatches vs the single-process run\n",
                 mismatches);
    return 1;
  }
  if (worker_failures != 0) {
    std::fprintf(stderr, "%d workers exited nonzero\n", worker_failures);
    return 1;
  }
  return 0;
}
