// cluster_runner: shard a DistributedMot across N OS processes.
//
// The parent opens the coordinator's control listener, forks one worker
// process per shard (each builds the identical world from the shared
// seed, constructs its own Simulator + DistributedMot, and hands both to
// a netio::ShardWorker), then drives a publish/move/query workload over
// loopback TCP and checks every answer against a single-process
// DistributedMot on the same SeedTree seed — the end-to-end parity the
// wire subsystem promises. `--future-shard` makes every odd shard encode
// at kWireVersionFuture, turning the run into a mixed-version interop
// smoke: current peers must skip the unknown fields and parity must
// still hold bit-for-bit.
//
// Observability (DESIGN.md §12): `--trace-dir <dir>` streams every
// shard's causally-linked trace events to <dir>/shard-<i>.jsonl (merge
// and check them with bench/trace_analyze) behind a flight-recorder
// ring dumped to <dir>/flight-<i>.jsonl on abnormal exit;
// `--status-json <path>` writes the cluster's merged telemetry registry
// at quiescence; `--kill-shard K` SIGTERMs shard K mid-run and verifies
// the survivors degrade gracefully and the flight dump is written.
//
//   cluster_runner --shards 4 --steps 50 --emit-json BENCH_cluster.json
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "netio/cluster.hpp"
#include "netio/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/channel_factory.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using mot::NodeId;
using mot::ObjectId;
using mot::Weight;

// The same deterministic world as tests/test_netio.cpp: every process
// that builds it from these parameters gets byte-identical structure,
// which the coordinator verifies via the world fingerprint at bootstrap.
struct World {
  explicit World(std::size_t side, std::uint64_t hierarchy_seed)
      : graph(mot::make_grid(side, side)),
        oracle(mot::make_distance_oracle(graph)) {
    mot::DoublingHierarchy::Params hp;
    hp.seed = hierarchy_seed;
    hierarchy = mot::DoublingHierarchy::build(graph, *oracle, hp);
    mot::MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<mot::MotPathProvider>(*hierarchy, options);
    chain_options = mot::make_mot_chain_options(options);
  }

  mot::Graph graph;
  std::unique_ptr<mot::DistanceOracle> oracle;
  std::unique_ptr<mot::DoublingHierarchy> hierarchy;
  std::unique_ptr<mot::MotPathProvider> provider;
  mot::ChainOptions chain_options;
};

struct WorkloadStep {
  NodeId move_to = mot::kInvalidNode;
  NodeId query_from = mot::kInvalidNode;
};

std::vector<WorkloadStep> make_workload(const World& world, NodeId start,
                                        int steps, std::uint64_t seed) {
  mot::SeedTree seeds(seed);
  mot::Rng rng = seeds.stream("cluster-workload");
  std::vector<WorkloadStep> workload;
  NodeId at = start;
  for (int i = 0; i < steps; ++i) {
    const auto neighbors = world.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    workload.push_back(
        {.move_to = at,
         .query_from =
             static_cast<NodeId>(rng.below(world.graph.num_nodes()))});
  }
  return workload;
}

// SIGTERM lands while the worker sits in its poll loop (the coordinator
// only kills between operations), so the non-async-signal-safe dump is
// benign in practice — see obs/flight_recorder.hpp.
extern "C" void dump_flight_on_term(int) {
  if (mot::obs::FlightRecorder* recorder = mot::obs::flight_recorder()) {
    recorder->dump("sigterm");
  }
  std::_Exit(3);
}

// Child-process body: build the world, attach a ShardWorker, serve until
// Shutdown. The exit code is the worker's run() result, so the parent's
// waitpid sweep surfaces any protocol failure.
[[noreturn]] void run_worker(std::uint32_t shard, std::uint32_t num_shards,
                             std::uint16_t port, std::size_t side,
                             std::uint64_t hierarchy_seed, bool future_shard,
                             const std::string& trace_dir) {
  const World world(side, hierarchy_seed);
  mot::Simulator sim;
  mot::proto::DistributedMot mot(*world.provider, sim, world.chain_options);
  mot::netio::WorkerConfig config;
  config.shard = shard;
  config.num_shards = num_shards;
  config.coordinator_port = port;
  config.trace_dir = trace_dir;
  if (future_shard && shard % 2 == 1) {
    config.encode_version = mot::wire::kWireVersionFuture;
  }
  if (!trace_dir.empty()) std::signal(SIGTERM, dump_flight_on_term);
  mot::netio::ShardWorker worker(config, *world.provider, sim, mot);
  std::_Exit(worker.run());
}

// Cluster status record: run shape, negotiated wire version, summed
// meter, and the merged per-shard telemetry registry (each instrument
// labeled {"shard","<i>"}) as one JSON object.
bool write_status_json(const std::string& path, std::uint32_t shards,
                       int steps, std::uint8_t wire_version,
                       double meter_total,
                       const mot::obs::MetricsRegistry& registry) {
  std::ofstream out(path);
  if (!out) return false;
  char meter[64];
  std::snprintf(meter, sizeof(meter), "%.17g", meter_total);
  out << "{\"schema\":\"mot-cluster-status-v1\",\"shards\":" << shards
      << ",\"steps\":" << steps
      << ",\"wire_version\":" << static_cast<int>(wire_version)
      << ",\"meter_total\":" << meter
      << ",\"metrics\":" << registry.to_json() << "}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  // The socket transport registers like any other channel layer, so
  // sweeps can request it by name (`--channel socket` style drivers).
  mot::register_channel("socket", [] {
    return std::make_unique<mot::netio::SocketTransport>();
  });

  std::uint64_t shards = 4;
  std::uint64_t steps = 0;
  bool future_shard = false;
  std::string trace_dir;
  std::string status_json;
  std::int64_t kill_shard = -1;
  mot::bench::CommonFlags common;
  {
    // parse_common consumes argv, so register the extra flags through
    // the same parser pass by pre-scanning: Flags has no extension hook,
    // hence the little strip-and-forward dance here.
    std::vector<char*> forwarded;
    forwarded.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shards" && i + 1 < argc) {
        shards = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--steps" && i + 1 < argc) {
        steps = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--future-shard") {
        future_shard = true;
      } else if (arg == "--trace-dir" && i + 1 < argc) {
        trace_dir = argv[++i];
      } else if (arg == "--status-json" && i + 1 < argc) {
        status_json = argv[++i];
      } else if (arg == "--kill-shard" && i + 1 < argc) {
        kill_shard = std::strtoll(argv[++i], nullptr, 10);
      } else {
        forwarded.push_back(argv[i]);
      }
    }
    int forwarded_argc = static_cast<int>(forwarded.size());
    common = mot::bench::parse_common(
        forwarded_argc, forwarded.data(),
        "multi-process cluster: sharded DistributedMot vs single-process "
        "parity [--shards N] [--steps N] [--future-shard] "
        "[--trace-dir D] [--status-json P] [--kill-shard K]");
  }
  if (shards < 1 || shards > 16) {
    std::fprintf(stderr, "--shards must be in [1, 16]\n");
    return 1;
  }
  const auto num_shards = static_cast<std::uint32_t>(shards);
  if (kill_shard >= static_cast<std::int64_t>(num_shards)) {
    std::fprintf(stderr, "--kill-shard must name an existing shard\n");
    return 1;
  }
  if (kill_shard >= 0 && trace_dir.empty()) {
    std::fprintf(stderr, "--kill-shard needs --trace-dir (the smoke "
                         "verifies the flight dump)\n");
    return 1;
  }
  const std::size_t side = common.full ? 12 : 8;
  const int num_steps =
      steps != 0 ? static_cast<int>(steps) : (common.full ? 100 : 40);
  constexpr NodeId kStart = 12;
  constexpr ObjectId kObject = 0;

  mot::netio::ClusterCoordinator coordinator(num_shards);
  if (!coordinator.open()) {
    std::fprintf(stderr, "cannot open the coordinator listener\n");
    return 1;
  }
  const std::uint16_t port = coordinator.port();

  std::vector<pid_t> children;
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    const pid_t pid = fork();
    MOT_CHECK(pid >= 0);
    if (pid == 0) {
      run_worker(shard, num_shards, port, side, common.base_seed + 7,
                 future_shard, trace_dir);
    }
    children.push_back(pid);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  if (!coordinator.bootstrap()) {
    std::fprintf(stderr, "bootstrap failed (divergent worlds?)\n");
    coordinator.shutdown();
    for (const pid_t pid : children) waitpid(pid, nullptr, 0);
    return 1;
  }
  std::printf("cluster up: %u shards, wire v%u%s\n", num_shards,
              coordinator.negotiated_version(),
              future_shard ? " (odd shards encode from the future)" : "");

  // Single-process reference on the identical world and workload.
  const World world(side, common.base_seed + 7);
  mot::Simulator ref_sim;
  mot::proto::DistributedMot reference(*world.provider, ref_sim,
                                       world.chain_options);
  reference.publish(kObject, kStart);
  ref_sim.run();
  if (!coordinator.publish(kObject, kStart)) {
    std::fprintf(stderr, "cluster publish failed\n");
    return 1;
  }

  if (kill_shard >= 0) {
    // Flight-recorder smoke: SIGTERM one shard between operations (it
    // sits in its poll loop, so the handler's dump is safe), then check
    // three things — the victim exits through the handler, the next
    // operation fails gracefully instead of hanging, and the victim
    // left a decodable flight-<K>.jsonl behind.
    const auto victim = static_cast<std::size_t>(kill_shard);
    kill(children[victim], SIGTERM);
    int status = 0;
    waitpid(children[victim], &status, 0);
    const bool handler_exit = WIFEXITED(status) && WEXITSTATUS(status) == 3;
    const std::vector<WorkloadStep> probe_steps =
        make_workload(world, kStart, 1, common.base_seed ^ 0xc1u);
    const bool graceful =
        !coordinator.move(kObject, probe_steps[0].move_to).has_value();
    coordinator.shutdown();
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (i == victim) continue;
      waitpid(children[i], nullptr, 0);
    }
    const std::string flight_path =
        trace_dir + "/flight-" + std::to_string(victim) + ".jsonl";
    std::ifstream flight(flight_path);
    std::string header;
    const bool dump_ok =
        static_cast<bool>(std::getline(flight, header)) &&
        header.find("\"ev\":\"flight_dump\"") != std::string::npos &&
        header.find("\"label\":\"sigterm\"") != std::string::npos;
    std::printf("kill-shard %zu: handler-exit=%s graceful-failure=%s "
                "flight-dump=%s\n",
                victim, handler_exit ? "yes" : "NO",
                graceful ? "yes" : "NO", dump_ok ? "yes" : "NO");
    return handler_exit && graceful && dump_ok ? 0 : 1;
  }

  int mismatches = 0;
  Weight cluster_move_cost = 0.0;
  Weight cluster_query_cost = 0.0;
  int queries_found = 0;
  const std::vector<WorkloadStep> workload =
      make_workload(world, kStart, num_steps, common.base_seed ^ 0xc1u);
  for (const WorkloadStep& step : workload) {
    mot::MoveResult expected_move;
    reference.move(kObject, step.move_to,
                   [&](const mot::MoveResult& r) { expected_move = r; });
    ref_sim.run();
    const auto moved = coordinator.move(kObject, step.move_to);
    if (!moved.has_value()) {
      std::fprintf(stderr, "cluster move failed\n");
      return 1;
    }
    cluster_move_cost += moved->cost;
    if (moved->cost != expected_move.cost ||
        moved->peak_level != expected_move.peak_level) {
      ++mismatches;
    }

    mot::QueryResult expected_query;
    reference.query(step.query_from, kObject,
                    [&](const mot::QueryResult& r) { expected_query = r; });
    ref_sim.run();
    const auto answered = coordinator.query(step.query_from, kObject);
    if (!answered.has_value()) {
      std::fprintf(stderr, "cluster query failed\n");
      return 1;
    }
    cluster_query_cost += answered->cost;
    if (answered->found) ++queries_found;
    if (answered->found != expected_query.found ||
        answered->proxy != expected_query.proxy ||
        answered->cost != expected_query.cost ||
        answered->found_level != expected_query.found_level) {
      ++mismatches;
    }
  }

  // Global state parity: summed per-node storage and summed meters.
  double cluster_meter = 0.0;
  const std::vector<std::uint64_t> loads =
      coordinator.collect_loads(&cluster_meter);
  const std::vector<std::size_t> expected_loads = reference.load_per_node();
  bool loads_match = loads.size() == expected_loads.size();
  if (loads_match) {
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (loads[i] != expected_loads[i]) loads_match = false;
    }
  }
  if (!loads_match) ++mismatches;
  const double ref_meter = reference.meter().total_distance();
  // Each charge is identical across runtimes; only the summation grouping
  // differs per shard, so compare up to associativity rounding.
  if (std::abs(cluster_meter - ref_meter) > 1e-6 * (1.0 + ref_meter)) {
    ++mismatches;
  }

  // Cluster-level telemetry: pull every shard's metrics snapshot into
  // one registry (per-shard labels), cross-check its summed meter gauge
  // against collect_loads, and optionally publish it as --status-json.
  mot::obs::MetricsRegistry cluster_metrics;
  if (!coordinator.collect_telemetry(&cluster_metrics)) {
    std::fprintf(stderr, "telemetry collection failed\n");
    ++mismatches;
  } else {
    double telemetry_meter = 0.0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      telemetry_meter +=
          cluster_metrics
              .gauge("mot_cost_distance_total", {{"shard", std::to_string(s)}})
              .value();
    }
    if (std::abs(telemetry_meter - cluster_meter) >
        1e-6 * (1.0 + cluster_meter)) {
      std::fprintf(stderr, "telemetry meter %.6f != load-report meter %.6f\n",
                   telemetry_meter, cluster_meter);
      ++mismatches;
    }
  }
  if (!status_json.empty() &&
      !write_status_json(status_json, num_shards, num_steps,
                         coordinator.negotiated_version(), cluster_meter,
                         cluster_metrics)) {
    std::fprintf(stderr, "failed to write --status-json %s\n",
                 status_json.c_str());
    return 1;
  }

  coordinator.shutdown();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  int worker_failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++worker_failures;
  }

  mot::Table table({"shards", "steps", "wire", "moves cost", "queries cost",
                    "found", "parity", "workers", "seconds"});
  table.begin_row()
      .cell(static_cast<std::uint64_t>(num_shards))
      .cell(static_cast<std::uint64_t>(num_steps))
      .cell(std::string(future_shard ? "mixed" : "uniform"))
      .cell(cluster_move_cost, 3)
      .cell(cluster_query_cost, 3)
      .cell(static_cast<std::uint64_t>(queries_found))
      .cell(std::string(mismatches == 0 ? "exact" : "BROKEN"))
      .cell(std::string(worker_failures == 0 ? "clean" : "FAILED"))
      .cell(wall.count(), 3);
  mot::bench::emit("multi-process cluster parity", table, common);

  if (mismatches != 0) {
    std::fprintf(stderr, "%d parity mismatches vs the single-process run\n",
                 mismatches);
    return 1;
  }
  if (worker_failures != 0) {
    std::fprintf(stderr, "%d workers exited nonzero\n", worker_failures);
    return 1;
  }
  return 0;
}
