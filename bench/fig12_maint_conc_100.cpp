// Figure 12: maintenance cost ratio, concurrent execution (up to 10
// in-flight operations per object), 100 objects. Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 12: maintenance cost ratio, concurrent, 100 objects");
  const SweepParams params = bench::sweep_from(common, 100, true);
  bench::emit("Fig. 12: maintenance cost ratio (concurrent, 100 objects)",
              run_maintenance_sweep(params), common);
  return 0;
}
