// Section 6 (Theorems 6.2 / 6.4): MOT over the sparse-cover hierarchy on
// general topologies, including non-doubling ones (star, lollipop). Cost
// ratios must stay polylogarithmic — nowhere near O(n) or O(D).
#include "bench_common.hpp"
#include "core/mot.hpp"
#include "hier/general_hierarchy.hpp"

namespace {

struct NamedGraph {
  std::string name;
  mot::Graph graph;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Section 6: MOT on general networks (sparse covers)");

  Rng build_rng(common.base_seed);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"grid-16x16", make_grid(16, 16)});
  graphs.push_back({"ring-256", make_ring(256)});
  graphs.push_back({"star-256", make_star(256)});
  graphs.push_back({"lollipop-64+192", make_lollipop(64, 192)});
  graphs.push_back(
      {"random-256", make_connected_random(256, 4.0, 6.0, build_rng)});

  Table table({"graph", "overlay", "height", "maint_ratio", "query_ratio"});
  const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
  for (const NamedGraph& entry : graphs) {
    const auto oracle = make_distance_oracle(entry.graph);
    const auto hierarchy =
        GeneralHierarchy::build(entry.graph, *oracle, {});

    OnlineStats maint, query;
    for (std::size_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = common.base_seed + s;
      MotOptions options;
      options.use_parent_sets = true;  // groups = covering clusters
      options.seed = seed;
      MotTracker tracker(*hierarchy, options);

      TraceParams tp;
      tp.num_objects = common.objects != 0 ? common.objects : 30;
      tp.moves_per_object = common.moves != 0 ? common.moves : 40;
      Rng rng(SeedTree(seed).seed_for("trace"));
      const MovementTrace trace = generate_trace(entry.graph, tp, rng);
      publish_all(tracker, trace);
      maint.add(
          run_moves(tracker, *oracle, trace.moves).aggregate_ratio());
      Rng qrng(SeedTree(seed).seed_for("queries"));
      const auto queries = generate_queries(entry.graph.num_nodes(),
                                            tp.num_objects, 150, qrng);
      query.add(run_queries(tracker, *oracle, queries).aggregate_ratio());
    }
    table.begin_row()
        .cell(entry.name)
        .cell("sparse-cover")
        .cell(static_cast<std::int64_t>(hierarchy->height()))
        .cell(maint.mean(), 3)
        .cell(query.mean(), 3);
  }
  bench::emit(
      "Theorems 6.2/6.4: MOT on general networks stays polylogarithmic",
      table, common);
  return 0;
}
