// Micro-benchmarks for the execution engines: wall-clock throughput of
// simulated operations (events/sec matters for large --full sweeps).
#include <benchmark/benchmark.h>

#include "micro_gbench.hpp"

#include "core/concurrent.hpp"
#include "core/mot.hpp"
#include "expt/experiment.hpp"
#include "proto/distributed_mot.hpp"

namespace mot {
namespace {

struct EngineFixture {
  EngineFixture() : network(build_grid_network(256, 3)) {
    MotOptions options;
    options.use_parent_sets = false;
    options.seed = 3;
    provider = std::make_unique<MotPathProvider>(*network.hierarchy,
                                                 options);
    chain_options = make_mot_chain_options(options);
  }
  Network network;
  std::unique_ptr<MotPathProvider> provider;
  ChainOptions chain_options;
};

EngineFixture& fixture() {
  static EngineFixture fx;
  return fx;
}

void BM_SimulatorEventThroughput(benchmark::State& state) {
  Simulator sim;
  std::uint64_t counter = 0;
  std::function<void()> tick = [&] {
    ++counter;
    sim.schedule(1.0, tick);
  };
  sim.schedule(0.0, tick);
  for (auto _ : state) {
    sim.run(1000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(counter));
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_ConcurrentEngineMoveBurst(benchmark::State& state) {
  EngineFixture& fx = fixture();
  Simulator sim;
  ConcurrentEngine engine(*fx.provider, sim, fx.chain_options);
  engine.publish(0, 0);
  Rng rng(7);
  NodeId at = 0;
  for (auto _ : state) {
    for (int k = 0; k < 10; ++k) {
      const auto neighbors = fx.network.graph().neighbors(at);
      at = neighbors[rng.below(neighbors.size())].to;
      engine.start_move(0, at, {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_ConcurrentEngineMoveBurst);

void BM_DistributedMotMove(benchmark::State& state) {
  EngineFixture& fx = fixture();
  Simulator sim;
  proto::DistributedMot runtime(*fx.provider, sim, fx.chain_options);
  runtime.publish(0, 0);
  sim.run();
  Rng rng(9);
  NodeId at = 0;
  for (auto _ : state) {
    const auto neighbors = fx.network.graph().neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    runtime.move(0, at, {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistributedMotMove);

void BM_DistributedMotQuery(benchmark::State& state) {
  EngineFixture& fx = fixture();
  Simulator sim;
  proto::DistributedMot runtime(*fx.provider, sim, fx.chain_options);
  runtime.publish(0, 100);
  sim.run();
  Rng rng(11);
  for (auto _ : state) {
    runtime.query(static_cast<NodeId>(rng.below(256)), 0, {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistributedMotQuery);

}  // namespace
}  // namespace mot

MOT_MICRO_MAIN()
