// Overload sweep: the same 256-node grid is driven at 1x/2x/4x/8x the
// baseline query load, concentrated on one hot object, with the
// finite-capacity per-node service model attached. Reports goodput
// (full-fidelity answers per issued query), the shed rate at admission,
// the p99 queueing delay, the degraded-answer fraction, and the breaker
// lifecycle — demonstrating that past saturation the runtime sheds and
// degrades instead of collapsing: every query still terminates, the
// conservation ledgers still balance, and goodput falls gracefully.
//
// Each load cell is fully self-contained (its own network, simulator,
// channel, service model and seed streams), so cells can run on the
// worker pool and the table is identical for --threads 1 and N.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "metrics/metrics.hpp"
#include "overload/overload.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/service_model.hpp"
#include "util/check.hpp"

namespace {

using namespace mot;

struct CellResult {
  double multiplier = 1.0;
  std::uint64_t issued = 0;
  OverloadSummary summary;
  std::uint64_t shed = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t sibling_redirects = 0;
  std::uint64_t credit_stalls = 0;
  std::size_t max_depth = 0;
  std::vector<std::string> violations;
};

struct CellParams {
  std::size_t grid_side = 16;
  std::size_t num_objects = 32;
  int rounds = 8;
  double round_time = 32.0;
  int moves_per_round = 4;
  int queries_per_round = 24;
  std::uint64_t base_seed = 42;
};

CellResult run_cell(const CellParams& cp, double multiplier) {
  CellResult out;
  out.multiplier = multiplier;
  const SeedTree seeds(cp.base_seed);

  const Network net =
      build_grid_network(cp.grid_side * cp.grid_side, cp.base_seed);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = cp.base_seed;
  const MotPathProvider provider(*net.hierarchy, options);

  faults::FaultPlan plan;  // reliable links; pressure comes from load
  faults::UnreliableChannel channel(plan, seeds.seed_for("channel"));
  Simulator sim;
  proto::DistributedMot dist(provider, sim,
                             make_mot_chain_options(options));
  dist.use_channel(&channel);
  dist.replicate_detection_lists(true);
  dist.set_query_policy({/*deadline=*/256.0, /*max_attempts=*/4,
                         /*backoff=*/2.0, /*hedge_delay=*/48.0});

  overload::OverloadConfig cfg;
  cfg.service_rate = 1.0;
  cfg.queue_capacity = 12;
  // Credit backpressure holds receiver queues near the query admit
  // limit, so the degrade watermark and the RED onset must sit below it
  // to ever fire.
  cfg.degrade_fraction = 0.25;
  cfg.red_fraction = 0.15;
  cfg.seed = seeds.seed_for("overload-red",
                            static_cast<std::uint64_t>(multiplier));
  ServiceModel service(sim, net.num_nodes(), cfg);
  dist.use_overload(&service);

  Rng place_rng = seeds.stream("placement");
  for (ObjectId o = 0; o < cp.num_objects; ++o) {
    dist.publish(o, place_rng.below(net.num_nodes()));
  }
  sim.run();
  MOT_CHECK(sim.empty());

  // The whole run is one burst window focused on object 0: the extra
  // (multiplier - 1) load all lands on its chain, so saturation shows up
  // as a hot spot rather than uniform slowdown.
  faults::FaultPlan traffic_plan;
  const double horizon =
      static_cast<double>(cp.rounds) * cp.round_time + sim.now();
  if (multiplier > 1.0) {
    traffic_plan.add_burst({sim.now(), horizon, /*focus=*/0, multiplier});
  }

  std::vector<char> move_busy(cp.num_objects, 0);
  std::uint64_t callbacks = 0;
  std::uint64_t answered = 0;
  std::uint64_t degraded = 0;

  auto issue_query = [&](ObjectId object, NodeId origin) {
    ++out.issued;
    dist.query(origin, object, [&](const QueryResult& r) {
      ++callbacks;
      if (r.found) {
        ++answered;
        if (r.degraded) ++degraded;
      }
    });
  };

  double round_end = sim.now();
  for (int round = 0; round < cp.rounds; ++round) {
    Rng traffic = seeds.stream("traffic", static_cast<std::uint64_t>(round));
    for (int i = 0; i < cp.moves_per_round; ++i) {
      const ObjectId object = traffic.below(cp.num_objects);
      if (move_busy[object] != 0) continue;
      move_busy[object] = 1;
      dist.move(object, traffic.below(net.num_nodes()),
                [&move_busy, object](const MoveResult&) {
                  move_busy[object] = 0;
                });
    }
    for (int i = 0; i < cp.queries_per_round; ++i) {
      issue_query(traffic.below(cp.num_objects),
                  traffic.below(net.num_nodes()));
    }
    const double burst = traffic_plan.burst_multiplier(sim.now());
    const int extra = static_cast<int>((burst - 1.0) *
                                       cp.queries_per_round);
    for (const faults::TrafficBurst& window : traffic_plan.bursts()) {
      if (sim.now() < window.start || sim.now() >= window.end) continue;
      for (int i = 0; i < extra; ++i) {
        issue_query(static_cast<ObjectId>(window.focus),
                    traffic.below(net.num_nodes()));
      }
    }
    round_end += cp.round_time;
    sim.run_until(round_end);
  }
  sim.run();

  out.violations = dist.invariant_violations();
  const proto::ProtocolStats& ps = dist.stats();
  const ServiceStats& ss = service.stats();
  // Every issued query must terminate through its callback (answered or
  // explicitly aborted); only a requester crash — impossible here — may
  // swallow one.
  const std::uint64_t terminated = callbacks + ps.queries_aborted;
  if (terminated < out.issued) {
    out.violations.push_back(
        "only " + std::to_string(terminated) + " of " +
        std::to_string(out.issued) + " queries terminated");
  }

  OverloadInputs in;
  in.queries_issued = out.issued;
  in.queries_answered = answered;
  in.queries_degraded = degraded;
  in.arrivals = ss.arrivals;
  in.admitted = ss.admitted;
  in.shed = ss.shed_total();
  in.breaker_trips = ps.breaker_trips;
  in.credit_stalls = ps.credit_stalls;
  in.max_queue_depth = ss.max_depth;
  in.queue_delays = service.queue_delays();
  out.summary = summarize_overload(in);
  out.shed = ss.shed_total();
  out.breaker_trips = ps.breaker_trips;
  out.sibling_redirects = ps.sibling_redirects;
  out.credit_stalls = ps.credit_stalls;
  out.max_depth = ss.max_depth;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Overload sweep: offered load vs goodput, shedding, queueing delay "
      "and graceful degradation");

  CellParams cp;
  cp.num_objects = common.objects != 0 ? common.objects : 32;
  cp.rounds = common.full ? 16 : 8;
  cp.base_seed = common.base_seed;

  const std::vector<double> multipliers = {1.0, 2.0, 4.0, 8.0};
  const std::vector<CellResult> cells = par::parallel_map(
      multipliers.size(),
      [&](std::size_t i) { return run_cell(cp, multipliers[i]); });

  bool all_ok = true;
  Table table({"mult", "queries", "goodput", "shed_rate", "p99_qdelay",
               "degraded", "redirects", "stalls", "breaker_trips",
               "max_depth", "ok"});
  for (const CellResult& cell : cells) {
    for (const std::string& line : cell.violations) {
      std::fprintf(stderr, "!! %gx: %s\n", cell.multiplier, line.c_str());
      all_ok = false;
    }
    table.begin_row()
        .cell(cell.multiplier, 0)
        .cell(cell.issued)
        .cell(cell.summary.goodput, 3)
        .cell(cell.summary.shed_rate, 3)
        .cell(cell.summary.p99_queue_delay, 2)
        .cell(cell.summary.degraded_fraction, 3)
        .cell(cell.sibling_redirects)
        .cell(cell.credit_stalls)
        .cell(cell.breaker_trips)
        .cell(static_cast<std::uint64_t>(cell.max_depth))
        .cell(cell.violations.empty() ? "yes" : "NO");
  }
  bench::emit("Overload sweep: offered load vs goodput and shedding",
              table, common);

  // The resilience acceptance bar: at 4x offered load the runtime must
  // still deliver more than 60% of the 1x goodput (shedding and
  // degrading, not collapsing).
  const double base = cells[0].summary.goodput;
  const double at4x = cells[2].summary.goodput;
  if (base > 0.0 && at4x <= 0.6 * base) {
    std::fprintf(stderr, "!! goodput at 4x (%.3f) fell below 60%% of the "
                 "1x baseline (%.3f)\n", at4x, base);
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}
