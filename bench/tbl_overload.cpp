// Overload sweep: the same 256-node grid is driven at 1x/2x/4x/8x the
// baseline query load, concentrated on one hot object, with the
// finite-capacity per-node service model attached. Reports goodput
// (full-fidelity answers per issued query), the shed rate at admission,
// the p99 queueing delay, the degraded-answer fraction, and the breaker
// lifecycle — demonstrating that past saturation the runtime sheds and
// degrades instead of collapsing: every query still terminates, the
// conservation ledgers still balance, and goodput falls gracefully.
//
// Each load cell is fully self-contained (its own network, simulator,
// channel, service model and seed streams), so cells can run on the
// worker pool and the table is identical for --threads 1 and N.
//
// The moving-saturation sweep re-runs the load ladder with the hotspot
// MOVING (a new hot object every epoch) and compares the static
// operating point against the adaptive control plane (AIMD credit
// windows, RED/admission tuning, load-aware replica placement stepping
// at epoch drains). The hotspot-migration table shows the 4x adaptive
// cell epoch by epoch: divert demand rises, the controller places
// replicas on the hot chain, and the demand it measured drains away.
#include <optional>
#include <string>
#include <vector>

#include "adapt/adaptive.hpp"
#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "metrics/metrics.hpp"
#include "overload/overload.hpp"
#include "proto/distributed_mot.hpp"
#include "sim/service_model.hpp"
#include "util/check.hpp"

namespace {

using namespace mot;

struct CellResult {
  double multiplier = 1.0;
  std::uint64_t issued = 0;
  OverloadSummary summary;
  std::uint64_t shed = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t sibling_redirects = 0;
  std::uint64_t credit_stalls = 0;
  std::size_t max_depth = 0;
  std::vector<std::string> violations;
};

struct CellParams {
  std::size_t grid_side = 16;
  std::size_t num_objects = 32;
  int rounds = 8;
  double round_time = 32.0;
  int moves_per_round = 4;
  int queries_per_round = 24;
  std::uint64_t base_seed = 42;
};

CellResult run_cell(const CellParams& cp, double multiplier) {
  CellResult out;
  out.multiplier = multiplier;
  const SeedTree seeds(cp.base_seed);

  const Network net =
      build_grid_network(cp.grid_side * cp.grid_side, cp.base_seed);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = cp.base_seed;
  const MotPathProvider provider(*net.hierarchy, options);

  faults::FaultPlan plan;  // reliable links; pressure comes from load
  faults::UnreliableChannel channel(plan, seeds.seed_for("channel"));
  Simulator sim;
  proto::DistributedMot dist(provider, sim,
                             make_mot_chain_options(options));
  dist.use_channel(&channel);
  dist.replicate_detection_lists(true);
  dist.set_query_policy({/*deadline=*/256.0, /*max_attempts=*/4,
                         /*backoff=*/2.0, /*hedge_delay=*/48.0});

  overload::OverloadConfig cfg;
  cfg.service_rate = 1.0;
  cfg.queue_capacity = 12;
  // Credit backpressure holds receiver queues near the query admit
  // limit, so the degrade watermark and the RED onset must sit below it
  // to ever fire.
  cfg.degrade_fraction = 0.25;
  cfg.red_fraction = 0.15;
  cfg.seed = seeds.seed_for("overload-red",
                            static_cast<std::uint64_t>(multiplier));
  ServiceModel service(sim, net.num_nodes(), cfg);
  dist.use_overload(&service);

  Rng place_rng = seeds.stream("placement");
  for (ObjectId o = 0; o < cp.num_objects; ++o) {
    dist.publish(o, place_rng.below(net.num_nodes()));
  }
  sim.run();
  MOT_CHECK(sim.empty());

  // The whole run is one burst window focused on object 0: the extra
  // (multiplier - 1) load all lands on its chain, so saturation shows up
  // as a hot spot rather than uniform slowdown.
  faults::FaultPlan traffic_plan;
  const double horizon =
      static_cast<double>(cp.rounds) * cp.round_time + sim.now();
  if (multiplier > 1.0) {
    traffic_plan.add_burst({sim.now(), horizon, /*focus=*/0, multiplier});
  }

  std::vector<char> move_busy(cp.num_objects, 0);
  std::uint64_t callbacks = 0;
  std::uint64_t answered = 0;
  std::uint64_t degraded = 0;

  auto issue_query = [&](ObjectId object, NodeId origin) {
    ++out.issued;
    dist.query(origin, object, [&](const QueryResult& r) {
      ++callbacks;
      if (r.found) {
        ++answered;
        if (r.degraded) ++degraded;
      }
    });
  };

  double round_end = sim.now();
  for (int round = 0; round < cp.rounds; ++round) {
    Rng traffic = seeds.stream("traffic", static_cast<std::uint64_t>(round));
    for (int i = 0; i < cp.moves_per_round; ++i) {
      const ObjectId object = traffic.below(cp.num_objects);
      if (move_busy[object] != 0) continue;
      move_busy[object] = 1;
      dist.move(object, traffic.below(net.num_nodes()),
                [&move_busy, object](const MoveResult&) {
                  move_busy[object] = 0;
                });
    }
    for (int i = 0; i < cp.queries_per_round; ++i) {
      issue_query(traffic.below(cp.num_objects),
                  traffic.below(net.num_nodes()));
    }
    const double burst = traffic_plan.burst_multiplier(sim.now());
    const int extra = static_cast<int>((burst - 1.0) *
                                       cp.queries_per_round);
    for (const faults::TrafficBurst& window : traffic_plan.bursts()) {
      if (sim.now() < window.start || sim.now() >= window.end) continue;
      for (int i = 0; i < extra; ++i) {
        issue_query(static_cast<ObjectId>(window.focus),
                    traffic.below(net.num_nodes()));
      }
    }
    round_end += cp.round_time;
    sim.run_until(round_end);
  }
  sim.run();

  out.violations = dist.invariant_violations();
  const proto::ProtocolStats& ps = dist.stats();
  const ServiceStats& ss = service.stats();
  // Every issued query must terminate through its callback (answered or
  // explicitly aborted); only a requester crash — impossible here — may
  // swallow one.
  const std::uint64_t terminated = callbacks + ps.queries_aborted;
  if (terminated < out.issued) {
    out.violations.push_back(
        "only " + std::to_string(terminated) + " of " +
        std::to_string(out.issued) + " queries terminated");
  }

  OverloadInputs in;
  in.queries_issued = out.issued;
  in.queries_answered = answered;
  in.queries_degraded = degraded;
  in.arrivals = ss.arrivals;
  in.admitted = ss.admitted;
  in.shed = ss.shed_total();
  in.breaker_trips = ps.breaker_trips;
  in.credit_stalls = ps.credit_stalls;
  in.max_queue_depth = ss.max_depth;
  in.queue_delays = service.queue_delays();
  out.summary = summarize_overload(in);
  out.shed = ss.shed_total();
  out.breaker_trips = ps.breaker_trips;
  out.sibling_redirects = ps.sibling_redirects;
  out.credit_stalls = ps.credit_stalls;
  out.max_depth = ss.max_depth;
  return out;
}

// One moving-saturation cell: the burst focus hops to a fresh hot object
// every epoch (kEpochRounds rounds), and both variants drain to a
// quiescence point at each epoch boundary — the adaptive variant steps
// its controller there, the static variant just pauses, so the two see
// identical offered load. `stamp` (main thread only) receives the final
// controller operating point for the run record.
struct MovingCellResult {
  double multiplier = 1.0;
  bool adaptive = false;
  std::uint64_t issued = 0;
  double goodput = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t diverts = 0;
  std::uint64_t redirects = 0;
  std::uint64_t window_moves = 0;
  std::uint64_t tuner_steps = 0;
  std::uint64_t placed = 0;
  std::uint64_t retired = 0;
  std::vector<ObjectId> epoch_hot;
  std::vector<std::uint64_t> epoch_diverts;
  std::vector<std::uint64_t> epoch_redirects;
  std::vector<std::size_t> epoch_placed;
  std::vector<std::string> violations;
};

constexpr int kEpochRounds = 2;

MovingCellResult run_moving_cell(const CellParams& cp, double multiplier,
                                 bool adaptive,
                                 obs::MetricsRegistry* stamp) {
  MovingCellResult out;
  out.multiplier = multiplier;
  out.adaptive = adaptive;
  const SeedTree seeds(cp.base_seed);

  const Network net =
      build_grid_network(cp.grid_side * cp.grid_side, cp.base_seed);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = cp.base_seed;
  const MotPathProvider provider(*net.hierarchy, options);

  faults::FaultPlan plan;
  faults::UnreliableChannel channel(plan, seeds.seed_for("channel"));
  Simulator sim;
  // The controller must outlive the runtime it is attached to.
  std::optional<adapt::AdaptiveController> tuner;
  if (adaptive) {
    adapt::AdaptiveConfig acfg;
    acfg.seed = seeds.seed_for("adaptive",
                               static_cast<std::uint64_t>(multiplier));
    tuner.emplace(acfg);
  }
  proto::DistributedMot dist(provider, sim,
                             make_mot_chain_options(options));
  dist.use_channel(&channel);
  if (adaptive) {
    dist.replicate_placed();
  } else {
    dist.replicate_detection_lists(true);
  }
  dist.set_query_policy({/*deadline=*/256.0, /*max_attempts=*/4,
                         /*backoff=*/2.0, /*hedge_delay=*/48.0});

  overload::OverloadConfig cfg;
  cfg.service_rate = 1.0;
  cfg.queue_capacity = 12;
  cfg.degrade_fraction = 0.25;
  cfg.red_fraction = 0.15;
  cfg.seed = seeds.seed_for("overload-red-moving",
                            static_cast<std::uint64_t>(multiplier));
  ServiceModel service(sim, net.num_nodes(), cfg);
  dist.use_overload(&service);
  if (adaptive) dist.use_adaptive(&*tuner);

  Rng place_rng = seeds.stream("placement");
  for (ObjectId o = 0; o < cp.num_objects; ++o) {
    dist.publish(o, place_rng.below(net.num_nodes()));
  }
  sim.run();
  MOT_CHECK(sim.empty());

  std::vector<char> move_busy(cp.num_objects, 0);
  std::uint64_t callbacks = 0;
  std::uint64_t answered = 0;
  std::uint64_t degraded = 0;
  auto issue_query = [&](ObjectId object, NodeId origin) {
    ++out.issued;
    dist.query(origin, object, [&](const QueryResult& r) {
      ++callbacks;
      if (r.found) {
        ++answered;
        if (r.degraded) ++degraded;
      }
    });
  };

  Rng hot_rng = seeds.stream("hotspot");
  double round_end = sim.now();
  const int epochs = cp.rounds / kEpochRounds;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const ObjectId hot =
        static_cast<ObjectId>(hot_rng.below(cp.num_objects));
    out.epoch_hot.push_back(hot);
    const std::uint64_t redirects_before = dist.stats().sibling_redirects;
    for (int r = 0; r < kEpochRounds; ++r) {
      const int round = epoch * kEpochRounds + r;
      Rng traffic = seeds.stream("moving-traffic",
                                 static_cast<std::uint64_t>(round));
      for (int i = 0; i < cp.moves_per_round; ++i) {
        const ObjectId object = traffic.below(cp.num_objects);
        if (move_busy[object] != 0) continue;
        move_busy[object] = 1;
        dist.move(object, traffic.below(net.num_nodes()),
                  [&move_busy, object](const MoveResult&) {
                    move_busy[object] = 0;
                  });
      }
      for (int i = 0; i < cp.queries_per_round; ++i) {
        issue_query(traffic.below(cp.num_objects),
                    traffic.below(net.num_nodes()));
      }
      const int extra = static_cast<int>((multiplier - 1.0) *
                                         cp.queries_per_round);
      for (int i = 0; i < extra; ++i) {
        issue_query(hot, traffic.below(net.num_nodes()));
      }
      round_end += cp.round_time;
      sim.run_until(round_end);
    }
    // Epoch boundary: drain to a quiescence point. Both variants drain
    // (identical offered load); only the adaptive one steps.
    sim.run();
    std::uint64_t epoch_diverts = 0;
    for (const std::uint64_t v : dist.divert_attempts_by_node()) {
      epoch_diverts += v;
    }
    out.epoch_diverts.push_back(epoch_diverts);
    out.diverts += epoch_diverts;
    out.epoch_redirects.push_back(dist.stats().sibling_redirects -
                                  redirects_before);
    if (adaptive) dist.adaptive_step();
    out.epoch_placed.push_back(dist.placed_replica_count());
    round_end = std::max(round_end, sim.now());
  }
  sim.run();

  out.violations = dist.invariant_violations();
  const proto::ProtocolStats& ps = dist.stats();
  const ServiceStats& ss = service.stats();
  const std::uint64_t terminated = callbacks + ps.queries_aborted;
  if (terminated < out.issued) {
    out.violations.push_back(
        "only " + std::to_string(terminated) + " of " +
        std::to_string(out.issued) + " queries terminated");
  }
  if (tuner) {
    for (std::string& line : tuner->violations(cfg)) {
      out.violations.push_back("controller: " + std::move(line));
    }
  }
  if (!service.node_ledgers_conserved()) {
    out.violations.push_back(
        "per-node service ledgers do not reconcile with the global stats");
  }
  const std::uint64_t good = answered - degraded;
  out.goodput = out.issued != 0
                    ? static_cast<double>(good) /
                          static_cast<double>(out.issued)
                    : 0.0;
  out.shed = ss.shed_total();
  out.redirects = ps.sibling_redirects;
  out.window_moves = ps.window_increases + ps.window_decreases;
  out.tuner_steps = ps.tuner_steps;
  out.placed = ps.replicas_placed;
  out.retired = ps.replicas_retired;
  if (stamp != nullptr) dist.export_adaptive_state(*stamp);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Overload sweep: offered load vs goodput, shedding, queueing delay "
      "and graceful degradation");

  CellParams cp;
  cp.num_objects = common.objects != 0 ? common.objects : 32;
  cp.rounds = common.full ? 16 : 8;
  cp.base_seed = common.base_seed;

  const std::vector<double> multipliers = {1.0, 2.0, 4.0, 8.0};
  const std::vector<CellResult> cells = par::parallel_map(
      multipliers.size(),
      [&](std::size_t i) { return run_cell(cp, multipliers[i]); });

  bool all_ok = true;
  Table table({"mult", "queries", "goodput", "shed_rate", "p99_qdelay",
               "degraded", "redirects", "stalls", "breaker_trips",
               "max_depth", "ok"});
  for (const CellResult& cell : cells) {
    for (const std::string& line : cell.violations) {
      std::fprintf(stderr, "!! %gx: %s\n", cell.multiplier, line.c_str());
      all_ok = false;
    }
    table.begin_row()
        .cell(cell.multiplier, 0)
        .cell(cell.issued)
        .cell(cell.summary.goodput, 3)
        .cell(cell.summary.shed_rate, 3)
        .cell(cell.summary.p99_queue_delay, 2)
        .cell(cell.summary.degraded_fraction, 3)
        .cell(cell.sibling_redirects)
        .cell(cell.credit_stalls)
        .cell(cell.breaker_trips)
        .cell(static_cast<std::uint64_t>(cell.max_depth))
        .cell(cell.violations.empty() ? "yes" : "NO");
  }
  bench::emit("Overload sweep: offered load vs goodput and shedding",
              table, common);

  // The resilience acceptance bar: at 4x offered load the runtime must
  // still deliver more than 60% of the 1x goodput (shedding and
  // degrading, not collapsing).
  const double base = cells[0].summary.goodput;
  const double at4x = cells[2].summary.goodput;
  if (base > 0.0 && at4x <= 0.6 * base) {
    std::fprintf(stderr, "!! goodput at 4x (%.3f) fell below 60%% of the "
                 "1x baseline (%.3f)\n", at4x, base);
    all_ok = false;
  }

  // --- Moving-saturation sweep: static operating point vs the adaptive
  // control plane on the same rotating-hotspot workload. Cells are
  // self-contained, so the 8 (multiplier, mode) pairs run on the pool.
  CellParams mp = cp;
  mp.rounds = common.full ? 32 : 16;
  struct MovingSpec {
    double mult;
    bool adaptive;
  };
  const std::vector<MovingSpec> specs = {
      {1.0, false}, {1.0, true}, {2.0, false}, {2.0, true},
      {4.0, false}, {4.0, true}, {8.0, false}, {8.0, true}};
  const std::vector<MovingCellResult> moving = par::parallel_map(
      specs.size(), [&](std::size_t i) {
        return run_moving_cell(mp, specs[i].mult, specs[i].adaptive,
                               nullptr);
      });

  Table moving_table({"mult", "mode", "queries", "goodput", "shed",
                      "diverts", "redirects", "window_moves",
                      "tuner_steps", "placed", "retired", "ok"});
  for (const MovingCellResult& cell : moving) {
    for (const std::string& line : cell.violations) {
      std::fprintf(stderr, "!! moving %gx %s: %s\n", cell.multiplier,
                   cell.adaptive ? "adaptive" : "static", line.c_str());
      all_ok = false;
    }
    moving_table.begin_row()
        .cell(cell.multiplier, 0)
        .cell(cell.adaptive ? "adaptive" : "static")
        .cell(cell.issued)
        .cell(cell.goodput, 3)
        .cell(cell.shed)
        .cell(cell.diverts)
        .cell(cell.redirects)
        .cell(cell.window_moves)
        .cell(cell.tuner_steps)
        .cell(cell.placed)
        .cell(cell.retired)
        .cell(cell.violations.empty() ? "yes" : "NO");
  }
  bench::emit("Moving saturation: static config vs adaptive control plane",
              moving_table, common);

  // Acceptance: past saturation the tuned runtime must do no worse than
  // the static operating point on the identical workload.
  for (const std::size_t at : {std::size_t{4}, std::size_t{6}}) {
    const MovingCellResult& stat = moving[at];
    const MovingCellResult& adap = moving[at + 1];
    if (adap.goodput < stat.goodput) {
      std::fprintf(stderr,
                   "!! adaptive goodput at %gx (%.3f) fell below the "
                   "static operating point (%.3f)\n",
                   adap.multiplier, adap.goodput, stat.goodput);
      all_ok = false;
    }
  }

  // --- Hotspot migration, epoch by epoch: the 4x adaptive cell replayed
  // on the main thread (the pool cells must match it bit for bit — a
  // determinism self-check) so the controller's final operating point
  // can be stamped into the process-wide metrics registry, and with it
  // the run record.
  const MovingCellResult hotspot =
      run_moving_cell(mp, 4.0, true, &obs::MetricsRegistry::global());
  if (hotspot.issued != moving[5].issued ||
      hotspot.goodput != moving[5].goodput ||
      hotspot.epoch_placed != moving[5].epoch_placed) {
    std::fprintf(stderr, "!! 4x adaptive cell replayed on the main thread "
                 "differs from the pooled cell\n");
    all_ok = false;
  }
  Table migration_table(
      {"epoch", "hot_obj", "diverts", "redirects", "placed"});
  for (std::size_t e = 0; e < hotspot.epoch_hot.size(); ++e) {
    migration_table.begin_row()
        .cell(static_cast<std::uint64_t>(e))
        .cell(static_cast<std::uint64_t>(hotspot.epoch_hot[e]))
        .cell(hotspot.epoch_diverts[e])
        .cell(hotspot.epoch_redirects[e])
        .cell(static_cast<std::uint64_t>(hotspot.epoch_placed[e]));
  }
  bench::emit("Hotspot migration: 4x adaptive cell, per epoch",
              migration_table, common);

  // Acceptance: placement must actually fire, and the divert demand the
  // controller placed against must drop in a later epoch.
  std::size_t first_placed = hotspot.epoch_placed.size();
  for (std::size_t e = 0; e < hotspot.epoch_placed.size(); ++e) {
    if (hotspot.epoch_placed[e] > 0) {
      first_placed = e;
      break;
    }
  }
  if (first_placed == hotspot.epoch_placed.size()) {
    std::fprintf(stderr,
                 "!! 4x adaptive cell never placed a replica\n");
    all_ok = false;
  } else {
    bool dropped = false;
    for (std::size_t e = first_placed + 1;
         e < hotspot.epoch_diverts.size(); ++e) {
      if (hotspot.epoch_diverts[e] < hotspot.epoch_diverts[first_placed]) {
        dropped = true;
        break;
      }
    }
    if (!dropped) {
      std::fprintf(stderr,
                   "!! divert demand never dropped below its level at the "
                   "first placement epoch\n");
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
