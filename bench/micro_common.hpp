// Shared measurement statistics for the micro benches: the trimmed-mean
// estimator and the interleaved order-rotated variant harness that
// micro_obs introduced, hoisted here so micro_wire, micro_par, and
// micro_throughput report figures through the same estimator instead of
// each hand-rolling its own.
//
// Deliberately dependency-free (standard library only): the Google
// Benchmark main() shim lives in micro_gbench.hpp, so benches that do
// not link benchmark::benchmark can still include this header.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mot::bench {

// Mean of the middle 60%: run wall times on a shared machine are a
// tight base distribution plus occasional positive scheduler spikes,
// and trimming both tails discards the spikes without letting one
// lucky minimum define the figure the way best-of does.
inline double trimmed_mean(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t cut = xs.size() / 5;
  double sum = 0.0;
  for (std::size_t i = cut; i < xs.size() - cut; ++i) sum += xs[i];
  return sum / static_cast<double>(xs.size() - 2 * cut);
}

// Trimmed mean of `reps` runs of one body; run(rep) returns wall
// seconds. The single-variant shape of measure_interleaved below.
template <typename RunFn>
double repeat_trimmed(int reps, RunFn&& run) {
  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) walls.push_back(run(r));
  return trimmed_mean(walls);
}

struct VariantStats {
  double seconds = 0.0;   // trimmed-mean wall seconds across reps
  double overhead = 0.0;  // trimmed-mean % slowdown vs variant 0
};

// Variant 0 is the baseline. Reps interleave the variants and rotate
// which one runs first, so machine drift within and across reps lands
// on all variants equally instead of biasing whichever is measured
// later. run(variant, rep) returns wall seconds for one run.
template <typename RunFn>
std::vector<VariantStats> measure_interleaved(std::size_t variants,
                                              int reps, RunFn&& run) {
  std::vector<std::vector<double>> walls(variants);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t k = 0; k < variants; ++k) {
      const std::size_t v = (k + static_cast<std::size_t>(r)) % variants;
      walls[v].push_back(run(v, r));
    }
  }
  std::vector<VariantStats> stats(variants);
  const double baseline = trimmed_mean(walls[0]);
  for (std::size_t v = 0; v < variants; ++v) {
    stats[v].seconds = trimmed_mean(walls[v]);
    stats[v].overhead = (stats[v].seconds / baseline - 1.0) * 100.0;
  }
  return stats;
}

}  // namespace mot::bench
