// Figure 6: query cost ratio, one-by-one execution, 100 objects. One
// query per object from a random node after the maintenance workload.
// Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 6: query cost ratio, one-by-one, 100 objects");
  const SweepParams params = bench::sweep_from(common, 100, false);
  bench::emit("Fig. 6: query cost ratio (one-by-one, 100 objects)",
              run_query_sweep(params), common);
  return 0;
}
