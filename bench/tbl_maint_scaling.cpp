// Theorem 4.8: MOT's maintenance cost ratio is O(min{log n, log D}). We
// report the ratio and ratio / log2(n): the latter must stay roughly flat
// as the network grows (the constant of the theorem).
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Theorem 4.8: maintenance cost ratio is O(log n)");
  SweepParams params = bench::sweep_from(common, 100, false);
  params.algos = {Algo::kMot};
  const Table sweep = run_maintenance_sweep(params);

  Table table({"nodes", "maint_ratio", "ratio_over_log2n"});
  for (std::size_t row = 0; row < sweep.num_rows(); ++row) {
    const double nodes = std::stod(sweep.at(row, 0));
    const double ratio = std::stod(sweep.at(row, 1));
    table.begin_row()
        .cell(sweep.at(row, 0))
        .cell(ratio, 3)
        .cell(ratio / std::log2(nodes), 3);
  }
  bench::emit("Theorem 4.8: MOT maintenance ratio grows like log n",
              table, common);
  return 0;
}
