// Micro-benchmarks for the graph substrate: SSSP, oracles, generators.
#include <benchmark/benchmark.h>

#include "micro_gbench.hpp"

#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_path.hpp"
#include "util/rng.hpp"

namespace mot {
namespace {

void BM_GridConstruction(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_grid(side, side));
  }
  state.SetComplexityN(static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_GridConstruction)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_DijkstraGrid(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Graph graph = make_grid(side, side);
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(graph, source));
    source = (source + 7) % graph.num_nodes();
  }
  state.SetComplexityN(static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_DijkstraGrid)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_BfsUnitGrid(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Graph graph = make_grid(side, side);
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_unit(graph, source));
    source = (source + 7) % graph.num_nodes();
  }
}
BENCHMARK(BM_BfsUnitGrid)->Arg(16)->Arg(32);

void BM_GridOracleQuery(benchmark::State& state) {
  const GridDistanceOracle oracle(32, 32);
  Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.below(1024));
    const auto v = static_cast<NodeId>(rng.below(1024));
    benchmark::DoNotOptimize(oracle.distance(u, v));
  }
}
BENCHMARK(BM_GridOracleQuery);

void BM_CachedOracleQueryWarm(benchmark::State& state) {
  const Graph graph = make_grid(16, 16);
  const CachedDistanceOracle oracle(graph);
  // Warm every source so the loop measures pure lookups.
  for (NodeId u = 0; u < 256; ++u) oracle.distance(u, 0);
  Rng rng(5);
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.below(256));
    const auto v = static_cast<NodeId>(rng.below(256));
    benchmark::DoNotOptimize(oracle.distance(u, v));
  }
}
BENCHMARK(BM_CachedOracleQueryWarm);

void BM_BoundedDijkstraSmallBall(benchmark::State& state) {
  const Graph graph = make_grid(32, 32);
  Rng rng(7);
  for (auto _ : state) {
    const auto center = static_cast<NodeId>(rng.below(1024));
    benchmark::DoNotOptimize(dijkstra_bounded(graph, center, 4.0));
  }
}
BENCHMARK(BM_BoundedDijkstraSmallBall);

}  // namespace
}  // namespace mot

MOT_MICRO_MAIN()
