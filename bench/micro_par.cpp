// micro_par: serial-vs-parallel speedup of the sweep engine.
//
// Runs the same small maintenance sweep at 1, 2, 4 and 8 workers,
// reports wall seconds and speedup per thread count, and checks that
// every parallel table is byte-identical to the serial one — the
// determinism contract of src/par. Emits through the common bench
// telemetry, so `--emit-json BENCH_par.json` records the sweep.
#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "micro_common.hpp"
#include "par/thread_pool.hpp"

namespace {

double run_once(const mot::SweepParams& params, std::string* rendered) {
  const auto start = std::chrono::steady_clock::now();
  const mot::Table table = mot::run_maintenance_sweep(params);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  *rendered = table.to_string();
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  const mot::bench::CommonFlags common = mot::bench::parse_common(
      argc, argv,
      "serial vs parallel sweep-engine speedup (determinism checked)");

  mot::SweepParams params = mot::bench::sweep_from(common, 50, false);
  if (params.sizes.empty() && !common.full) {
    params.sizes = {16, 64, 144};  // keep the default run laptop-friendly
  }

  const std::size_t saved_workers = mot::par::default_workers();
  const int reps = common.full ? 5 : 3;

  mot::Table table({"threads", "seconds", "speedup", "identical"});
  std::string serial_rendered;
  double serial_seconds = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    mot::par::set_default_workers(threads);
    // Trimmed mean over reps through the shared estimator; every rep
    // must render the identical table for the determinism contract.
    std::string rendered;
    const double seconds = mot::bench::repeat_trimmed(reps, [&](int) {
      return run_once(params, &rendered);
    });
    if (threads == 1) {
      serial_rendered = rendered;
      serial_seconds = seconds;
    }
    table.begin_row()
        .cell(static_cast<std::uint64_t>(threads))
        .cell(seconds, 3)
        .cell(serial_seconds / seconds, 2)
        .cell(std::string(rendered == serial_rendered ? "yes" : "NO"));
    if (rendered != serial_rendered) {
      std::fprintf(stderr,
                   "determinism violation: %zu-thread table differs from "
                   "serial\n",
                   threads);
      return 1;
    }
  }
  mot::par::set_default_workers(saved_workers);

  mot::bench::emit("parallel sweep speedup", table, common);
  return 0;
}
