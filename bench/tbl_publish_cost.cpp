// Theorem 4.1: the one-time publish cost of an object is O(D) in
// constant-doubling networks. We publish objects at random proxies on
// grids of growing diameter and report cost / D, which must stay flat.
#include "bench_common.hpp"
#include "core/mot.hpp"
#include "graph/shortest_path.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Theorem 4.1: publish cost is O(diameter)");

  Table table({"nodes", "diameter", "mean_publish_cost", "cost_over_D"});
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    OnlineStats costs;
    const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
    for (std::size_t s = 0; s < seeds; ++s) {
      const Network net = build_grid_network(size, common.base_seed + s);
      MotOptions options;
      options.use_parent_sets = false;
      Rng rng(SeedTree(common.base_seed + s).seed_for("publish"));
      MotTracker tracker(*net.hierarchy, options);
      const std::size_t objects =
          common.objects != 0 ? common.objects : 50;
      for (ObjectId o = 0; o < objects; ++o) {
        const CostWindow window(tracker.meter());
        tracker.publish(o, static_cast<NodeId>(rng.below(net.num_nodes())));
        costs.add(window.cost());
      }
    }
    const Network probe = build_grid_network(size, common.base_seed);
    const Weight diameter = approx_diameter(probe.graph());
    table.begin_row()
        .cell(static_cast<std::uint64_t>(probe.num_nodes()))
        .cell(diameter, 0)
        .cell(costs.mean(), 1)
        .cell(costs.mean() / diameter, 2);
  }
  bench::emit("Theorem 4.1: publish cost scales as O(D)", table, common);
  return 0;
}
