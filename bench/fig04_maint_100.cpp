// Figure 4: maintenance cost ratio, one-by-one execution, 100 objects,
// 1000 maintenance operations per object in random order, grids of 10 to
// 1024 nodes, MOT vs STUN vs Z-DAT vs Z-DAT + shortcuts. Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 4: maintenance cost ratio, one-by-one, 100 objects");
  const SweepParams params = bench::sweep_from(common, 100, false);
  bench::emit("Fig. 4: maintenance cost ratio (one-by-one, 100 objects)",
              run_maintenance_sweep(params), common);
  return 0;
}
