// Ablation A1 (Section 3.1): probing whole parent sets guarantees that
// detection paths meet at level ceil(log d) + 1 (Lemma 2.1), but visiting
// 2^{3 rho} parents per level costs real messages. Default parents climb
// cheaply but may meet higher. This table shows both sides.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Ablation: parent-set probing vs default parents (Section 3.1)");

  Table table({"nodes", "variant", "maint_ratio", "query_ratio",
               "mean_peak_level"});
  const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    for (const bool parent_sets : {false, true}) {
      OnlineStats maint, query, peak;
      for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = common.base_seed + s;
        const Network net = build_grid_network(size, seed);
        TraceParams tp;
        tp.num_objects = common.objects != 0 ? common.objects : 50;
        tp.moves_per_object = common.moves != 0 ? common.moves : 50;
        Rng rng(SeedTree(seed).seed_for("trace"));
        const MovementTrace trace = generate_trace(net.graph(), tp, rng);

        MotOptions options;
        options.use_parent_sets = parent_sets;
        options.use_special_parents = true;
        options.special_parent_offset = 2;
        const EdgeRates rates = trace.estimate_rates();
        AlgoInstance instance =
            make_algo(Algo::kMot, net, rates, seed, &options);
        publish_all(*instance.tracker, trace);

        CostRatioAccumulator move_acc;
        OnlineStats peaks;
        for (const MoveOp& op : trace.moves) {
          const MoveResult r = instance.tracker->move(op.object, op.to);
          move_acc.add(r.cost, net.oracle->distance(op.from, op.to));
          peaks.add(r.peak_level);
        }
        maint.add(move_acc.aggregate_ratio());
        peak.add(peaks.mean());
        Rng qrng(SeedTree(seed).seed_for("queries"));
        const auto queries = generate_queries(net.num_nodes(),
                                              tp.num_objects, 200, qrng);
        query.add(run_queries(*instance.tracker, *net.oracle, queries)
                      .aggregate_ratio());
      }
      table.begin_row()
          .cell(static_cast<std::uint64_t>(size))
          .cell(parent_sets ? "parent-sets" : "default-parents")
          .cell(maint.mean(), 3)
          .cell(query.mean(), 3)
          .cell(peak.mean(), 2);
    }
  }
  bench::emit("Ablation A1: parent sets lower the meet level but cost "
              "constant-factor messages",
              table, common);
  return 0;
}
