// micro_throughput: the sustained-throughput figure.
//
// Three sections back the BENCH_throughput.json trajectory number:
//   - single-process engine throughput, batched vs unbatched: the same
//     sustained fleet workload (correlated moves sharing tree-path
//     prefixes + a locate sweep per round) driven through two
//     DistributedMot instances, interleaved and order-rotated through
//     the shared trimmed-mean estimator. `use_batching` must win on
//     wall clock, not just on metered messages;
//   - sharded engine scaling across worker counts: independent batched
//     shards driven through the par pool at 1/2/4 workers. Wall clock
//     scales; the per-shard figure table (answers digest, metered
//     distance, message counts) must be byte-identical at every worker
//     count — the PR 3 determinism contract extended to the batched
//     fast path;
//   - loopback-cluster ops/s: the threaded multi-process harness
//     (coordinator + one ShardWorker thread per shard over real TCP)
//     with the frame-batched mesh, recorded alongside the
//     single-process figure.
//
//   micro_throughput --emit-json BENCH_throughput.json
//   micro_throughput --assert-speedup 1.0   # CI gate: batched >= unbatched
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/mot.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "micro_common.hpp"
#include "netio/cluster.hpp"
#include "par/thread_pool.hpp"
#include "proto/distributed_mot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using mot::NodeId;
using mot::ObjectId;

struct World {
  explicit World(std::size_t side, std::uint64_t hierarchy_seed)
      : graph(mot::make_grid(side, side)),
        oracle(mot::make_distance_oracle(graph)) {
    mot::DoublingHierarchy::Params hp;
    hp.seed = hierarchy_seed;
    hierarchy = mot::DoublingHierarchy::build(graph, *oracle, hp);
    mot::MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<mot::MotPathProvider>(*hierarchy, options);
    chain_options = mot::make_mot_chain_options(options);
  }

  mot::Graph graph;
  std::unique_ptr<mot::DistanceOracle> oracle;
  std::unique_ptr<mot::DoublingHierarchy> hierarchy;
  std::unique_ptr<mot::MotPathProvider> provider;
  mot::ChainOptions chain_options;
};

struct EngineOutcome {
  double wall = 0.0;          // seconds over the sustained rounds
  std::uint64_t ops = 0;      // moves + locates timed
  std::uint64_t queries = 0;  // locates alone, for the queries/s figure
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a over answers
  double meter = 0.0;
  std::uint64_t messages = 0;
};

// The sustained fleet mix: `objects` mobiles published in co-located
// fleets at a few depots, then `rounds` of every fleet stepping to the
// same neighbor inside one batch window (maximally shared tree-path
// prefixes) followed by a locate sweep. Only the rounds are timed; the
// publish burst is setup.
EngineOutcome run_engine(const World& world, bool batched, int objects,
                         int rounds, std::uint64_t seed) {
  mot::Simulator sim;
  mot::proto::DistributedMot mot(*world.provider, sim,
                                 world.chain_options);
  if (batched) mot.use_batching(true);

  constexpr int kDepots = 4;
  std::vector<NodeId> depot_at(kDepots);
  for (int d = 0; d < kDepots; ++d) {
    depot_at[d] = static_cast<NodeId>(
        (d * world.graph.num_nodes()) / kDepots);
  }
  for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
    mot.publish(o, depot_at[o % kDepots]);
  }
  sim.run();

  EngineOutcome out;
  mot::SeedTree seeds(seed);
  mot::Rng rng = seeds.stream("micro-throughput");
  // A sustained tracking mix is maintenance-heavy: objects step more
  // often than they are located. Two move windows per locate sweep.
  constexpr int kMoveWindows = 2;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int w = 0; w < kMoveWindows; ++w) {
      for (int d = 0; d < kDepots; ++d) {
        const auto neighbors = world.graph.neighbors(depot_at[d]);
        depot_at[d] = neighbors[rng.below(neighbors.size())].to;
      }
      for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
        mot.move(o, depot_at[o % kDepots]);
      }
      sim.run();
    }
    for (ObjectId o = 0; o < static_cast<ObjectId>(objects); ++o) {
      mot.query(
          static_cast<NodeId>((o * 31 + static_cast<ObjectId>(r) * 7) %
                              world.graph.num_nodes()),
          o, [&out](const mot::QueryResult& result) {
            MOT_CHECK(result.found);
            out.digest =
                (out.digest ^ static_cast<std::uint64_t>(result.proxy)) *
                1099511628211ULL;
          });
    }
    sim.run();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  mot.validate_quiescent();
  out.wall = wall.count();
  out.queries = static_cast<std::uint64_t>(objects) *
                static_cast<std::uint64_t>(rounds);
  out.ops = (1 + kMoveWindows) * out.queries;  // moves + locates
  out.meter = mot.meter().total_distance();
  out.messages = mot.stats().messages_sent;
  return out;
}

// One threaded loopback cluster run (coordinator + one ShardWorker
// thread per shard over real TCP sockets): publish + steps x (move +
// query), returns wall seconds. Same harness shape as micro_obs, now
// exercising the frame-batched mesh.
double run_cluster(const World& world, std::uint32_t num_shards, int steps,
                   std::uint64_t seed) {
  mot::netio::ClusterCoordinator coordinator(num_shards);
  MOT_CHECK(coordinator.open());
  const std::uint16_t port = coordinator.port();
  std::vector<std::thread> threads;
  std::vector<int> rcs(num_shards, -1);
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    threads.emplace_back([shard, num_shards, port, &world, &rcs] {
      mot::Simulator sim;
      mot::proto::DistributedMot mot(*world.provider, sim,
                                     world.chain_options);
      mot::netio::WorkerConfig config;
      config.shard = shard;
      config.num_shards = num_shards;
      config.coordinator_port = port;
      mot::netio::ShardWorker worker(config, *world.provider, sim, mot);
      rcs[shard] = worker.run();
    });
  }
  MOT_CHECK(coordinator.bootstrap());

  mot::SeedTree seeds(seed);
  mot::Rng rng = seeds.stream("micro-throughput-cluster");
  constexpr ObjectId kObject = 0;
  NodeId at = 12;
  const auto start = std::chrono::steady_clock::now();
  MOT_CHECK(coordinator.publish(kObject, at));
  for (int i = 0; i < steps; ++i) {
    const auto neighbors = world.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    MOT_CHECK(coordinator.move(kObject, at).has_value());
    MOT_CHECK(coordinator
                  .query(static_cast<NodeId>(
                             rng.below(world.graph.num_nodes())),
                         kObject)
                  .has_value());
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  coordinator.shutdown();
  for (auto& thread : threads) thread.join();
  for (const int rc : rcs) MOT_CHECK(rc == 0);
  return wall.count();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --assert-speedup before the common parser sees it (same
  // pattern as the micro_gbench log-level shim): when set, the process
  // fails unless batched/unbatched wall speedup reaches the floor.
  double assert_speedup = 0.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--assert-speedup=", 0) == 0) {
      assert_speedup =
          std::stod(arg.substr(std::string("--assert-speedup=").size()));
    } else if (arg == "--assert-speedup" && i + 1 < argc) {
      assert_speedup = std::stod(argv[++i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const mot::bench::CommonFlags common = mot::bench::parse_common(
      argc, argv,
      "sustained locate+move throughput: batched vs unbatched engine, "
      "sharded scaling across worker counts, loopback-cluster ops/s");
  const std::size_t side = common.full ? 12 : 8;
  const int objects = common.objects != 0
                          ? static_cast<int>(common.objects)
                          : (common.full ? 128 : 48);
  // Long sustained runs: the batching win is a steady-state property,
  // and short bursts leave the figure at the mercy of scheduler noise.
  const int rounds = common.moves != 0 ? static_cast<int>(common.moves)
                                       : (common.full ? 250 : 100);
  const int reps = common.seeds != 0 ? static_cast<int>(common.seeds)
                                     : (common.full ? 11 : 9);
  const World world(side, common.base_seed + 7);

  // -- Section 1: batched vs unbatched, interleaved + order-rotated --
  std::vector<EngineOutcome> last(2);
  const std::vector<mot::bench::VariantStats> stats =
      mot::bench::measure_interleaved(2, reps, [&](std::size_t v, int r) {
        const EngineOutcome out =
            run_engine(world, /*batched=*/v == 1, objects, rounds,
                       common.base_seed + static_cast<std::uint64_t>(r));
        last[v] = out;
        return out.wall;
      });
  // Parity: batching must never change what the structure computes.
  MOT_CHECK(last[0].digest == last[1].digest);
  MOT_CHECK(last[0].messages > last[1].messages);

  const double ops = static_cast<double>(last[0].ops);
  const double speedup = stats[0].seconds / stats[1].seconds;
  mot::Table engine({"variant", "objects", "rounds", "trimmed s", "ops/s",
                     "queries/s", "speedup"});
  const char* names[] = {"unbatched", "batched"};
  for (std::size_t v = 0; v < 2; ++v) {
    engine.begin_row()
        .cell(std::string(names[v]))
        .cell(static_cast<std::uint64_t>(objects))
        .cell(static_cast<std::uint64_t>(rounds))
        .cell(stats[v].seconds, 4)
        .cell(ops / stats[v].seconds, 0)
        .cell(static_cast<double>(last[v].queries) / stats[v].seconds, 0)
        .cell(v == 0 ? 1.0 : speedup, 2);
  }
  mot::bench::emit("engine throughput, batched vs unbatched", engine,
                   common);

  // -- Section 2: sharded batched engines across worker counts --
  const std::size_t saved_workers = mot::par::default_workers();
  constexpr std::size_t kShards = 4;
  const int shard_objects = std::max(objects / static_cast<int>(kShards), 8);
  mot::Table scaling({"threads", "shards", "trimmed s", "agg ops/s",
                      "identical"});
  std::string reference_table;
  bool all_identical = true;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    mot::par::set_default_workers(threads);
    std::vector<EngineOutcome> shard_out;
    const double seconds = mot::bench::repeat_trimmed(3, [&](int) {
      const auto start = std::chrono::steady_clock::now();
      shard_out = mot::par::parallel_map(kShards, [&](std::size_t shard) {
        return run_engine(world, /*batched=*/true, shard_objects, rounds,
                          common.base_seed + 101 * (shard + 1));
      });
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      return wall.count();
    });
    // The figure table per shard holds only deterministic quantities —
    // it must render byte-identically at every worker count.
    mot::Table figure({"shard", "digest", "meter", "messages"});
    std::uint64_t agg_ops = 0;
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      figure.begin_row()
          .cell(static_cast<std::uint64_t>(shard))
          .cell(shard_out[shard].digest)
          .cell(shard_out[shard].meter, 6)
          .cell(shard_out[shard].messages);
      agg_ops += shard_out[shard].ops;
    }
    const std::string rendered = figure.to_string();
    if (reference_table.empty()) {
      reference_table = rendered;
      mot::bench::emit("per-shard figure table (worker-count invariant)",
                       figure, common);
    }
    const bool identical = rendered == reference_table;
    all_identical = all_identical && identical;
    scaling.begin_row()
        .cell(static_cast<std::uint64_t>(threads))
        .cell(static_cast<std::uint64_t>(kShards))
        .cell(seconds, 4)
        .cell(static_cast<double>(agg_ops) / seconds, 0)
        .cell(std::string(identical ? "yes" : "NO"));
  }
  mot::par::set_default_workers(saved_workers);
  mot::bench::emit("sharded batched engines vs worker count", scaling,
                   common);
  if (!all_identical) {
    std::fprintf(stderr,
                 "determinism violation: batched shard table differs "
                 "across worker counts\n");
    return 1;
  }

  // -- Section 3: loopback cluster with the frame-batched mesh --
  const int steps = common.full ? 1200 : 400;
  const int cluster_reps = common.full ? 7 : 5;
  mot::Table cluster({"shards", "steps", "trimmed s", "ops/s"});
  for (const std::uint32_t shards : {2u, 4u}) {
    const double seconds =
        mot::bench::repeat_trimmed(cluster_reps, [&](int r) {
          return run_cluster(world, shards, steps,
                             common.base_seed +
                                 static_cast<std::uint64_t>(r));
        });
    const double cluster_ops = 2.0 * steps + 1.0;
    cluster.begin_row()
        .cell(static_cast<std::uint64_t>(shards))
        .cell(static_cast<std::uint64_t>(steps))
        .cell(seconds, 4)
        .cell(cluster_ops / seconds, 1);
  }
  mot::bench::emit("cluster ops/s (loopback TCP, frame-batched mesh)",
                   cluster, common);

  if (assert_speedup > 0.0 && speedup < assert_speedup) {
    std::fprintf(stderr,
                 "throughput regression: batched speedup %.2fx below the "
                 "%.2fx floor\n",
                 speedup, assert_speedup);
    return 1;
  }
  return 0;
}
