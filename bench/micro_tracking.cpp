// Micro-benchmarks for tracking operations: MOT moves/queries and the
// baselines, per operation, on a 16x16 grid.
#include <benchmark/benchmark.h>

#include "micro_gbench.hpp"

#include "core/mot.hpp"
#include "expt/experiment.hpp"
#include "graph/generators.hpp"

namespace mot {
namespace {

struct TrackingFixture {
  TrackingFixture() : network(build_grid_network(256, 3)) {
    TraceParams tp;
    tp.num_objects = 50;
    tp.moves_per_object = 20;
    Rng rng(5);
    trace = generate_trace(network.graph(), tp, rng);
    rates = trace.estimate_rates();
  }
  Network network;
  MovementTrace trace;
  EdgeRates rates;
};

TrackingFixture& fixture() {
  static TrackingFixture fx;
  return fx;
}

void run_move_bench(benchmark::State& state, Algo algo) {
  TrackingFixture& fx = fixture();
  AlgoInstance instance = make_algo(algo, fx.network, fx.rates, 3);
  publish_all(*instance.tracker, fx.trace);
  Rng rng(7);
  std::vector<NodeId> at = fx.trace.initial_proxy;
  for (auto _ : state) {
    const auto object = static_cast<ObjectId>(rng.below(50));
    const auto neighbors = fx.network.graph().neighbors(at[object]);
    at[object] = neighbors[rng.below(neighbors.size())].to;
    benchmark::DoNotOptimize(instance.tracker->move(object, at[object]));
  }
}

void run_query_bench(benchmark::State& state, Algo algo) {
  TrackingFixture& fx = fixture();
  AlgoInstance instance = make_algo(algo, fx.network, fx.rates, 3);
  publish_all(*instance.tracker, fx.trace);
  run_moves(*instance.tracker, *fx.network.oracle, fx.trace.moves);
  Rng rng(9);
  for (auto _ : state) {
    const auto from = static_cast<NodeId>(rng.below(256));
    const auto object = static_cast<ObjectId>(rng.below(50));
    benchmark::DoNotOptimize(instance.tracker->query(from, object));
  }
}

void BM_MotMove(benchmark::State& state) {
  run_move_bench(state, Algo::kMot);
}
BENCHMARK(BM_MotMove);

void BM_MotLbMove(benchmark::State& state) {
  run_move_bench(state, Algo::kMotLoadBalanced);
}
BENCHMARK(BM_MotLbMove);

void BM_StunMove(benchmark::State& state) {
  run_move_bench(state, Algo::kStun);
}
BENCHMARK(BM_StunMove);

void BM_ZdatMove(benchmark::State& state) {
  run_move_bench(state, Algo::kZdat);
}
BENCHMARK(BM_ZdatMove);

void BM_MotQuery(benchmark::State& state) {
  run_query_bench(state, Algo::kMot);
}
BENCHMARK(BM_MotQuery);

void BM_StunQuery(benchmark::State& state) {
  run_query_bench(state, Algo::kStun);
}
BENCHMARK(BM_StunQuery);

void BM_ZdatQuery(benchmark::State& state) {
  run_query_bench(state, Algo::kZdat);
}
BENCHMARK(BM_ZdatQuery);

void BM_MotPublish(benchmark::State& state) {
  TrackingFixture& fx = fixture();
  Rng rng(11);
  MotOptions options;
  options.use_parent_sets = false;
  ObjectId next = 0;
  MotTracker tracker(*fx.network.hierarchy, options);
  for (auto _ : state) {
    tracker.publish(next++,
                    static_cast<NodeId>(rng.below(256)));
  }
}
BENCHMARK(BM_MotPublish);

}  // namespace
}  // namespace mot

MOT_MICRO_MAIN()
