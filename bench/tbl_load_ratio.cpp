// Theorem 5.1 / Corollary 5.2: hashing detection lists across cluster
// de Bruijn embeddings flattens per-node load (average O(log D)) at the
// price of a logarithmic factor in maintenance and query cost. We report
// both sides of the trade for MOT vs MOT-LB.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Theorem 5.1: load balancing trade-off, MOT vs MOT-LB");

  Table table({"nodes", "algo", "max_load", "mean_load", "imbalance",
               "maint_ratio", "query_ratio"});
  const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    for (const Algo algo : {Algo::kMot, Algo::kMotLoadBalanced}) {
      OnlineStats max_load, mean_load, imbalance, maint, query;
      for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = common.base_seed + s;
        const Network net = build_grid_network(size, seed);
        TraceParams tp;
        tp.num_objects = common.objects != 0 ? common.objects : 100;
        tp.moves_per_object =
            common.moves != 0 ? common.moves : (common.full ? 200 : 50);
        Rng rng(SeedTree(seed).seed_for("trace"));
        const MovementTrace trace = generate_trace(net.graph(), tp, rng);
        const EdgeRates rates = trace.estimate_rates();
        AlgoInstance instance = make_algo(algo, net, rates, seed);
        publish_all(*instance.tracker, trace);
        maint.add(run_moves(*instance.tracker, *net.oracle, trace.moves)
                      .aggregate_ratio());
        Rng qrng(SeedTree(seed).seed_for("queries"));
        const auto queries =
            generate_queries(net.num_nodes(), tp.num_objects,
                             tp.num_objects, qrng);
        query.add(run_queries(*instance.tracker, *net.oracle, queries)
                      .aggregate_ratio());
        const LoadSummary load =
            summarize_load(instance.tracker->load_per_node());
        max_load.add(static_cast<double>(load.max));
        mean_load.add(load.mean);
        imbalance.add(load.imbalance);
      }
      table.begin_row()
          .cell(static_cast<std::uint64_t>(size))
          .cell(std::string(algo_name(algo)))
          .cell(max_load.mean(), 1)
          .cell(mean_load.mean(), 2)
          .cell(imbalance.mean(), 1)
          .cell(maint.mean(), 3)
          .cell(query.mean(), 3);
    }
  }
  bench::emit(
      "Theorem 5.1 / Cor. 5.2: load flattening vs cost overhead (MOT-LB)",
      table, common);
  return 0;
}
