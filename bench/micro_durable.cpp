// micro_durable: restore-vs-rebuild cost on warm tracking state.
//
// For each grid size the bench publishes a fleet of objects, walks them
// with seeded moves while journaling into a DurableStore (snapshot taken
// halfway, so the journal holds a real suffix), then measures two ways
// of bringing a cold process back to the same answers:
//
//   rebuild   full DoublingHierarchy::build (MIS refinement) + republish
//             every object at its current physical position
//   restore   DurableStore::restore — snapshot decode + from_state CSR
//             rehydration + journal-suffix replay — and
//             restore_durable_image into a fresh tracker
//
// Every restored tracker is checked against the live one (image digest
// equality + spot queries) before its time is accepted, so the table
// never reports a fast-but-wrong restore.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/mot.hpp"
#include "durable/store.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "micro_common.hpp"
#include "tracking/chain_tracker.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using mot::NodeId;
using mot::ObjectId;

struct World {
  explicit World(std::size_t side, std::uint64_t hierarchy_seed)
      : graph(mot::make_grid(side, side)),
        oracle(mot::make_distance_oracle(graph)) {
    hp.seed = hierarchy_seed;
    hierarchy = mot::DoublingHierarchy::build(graph, *oracle, hp);
    mot::MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<mot::MotPathProvider>(*hierarchy, options);
    chain_options = mot::make_mot_chain_options(options);
  }

  mot::Graph graph;
  std::unique_ptr<mot::DistanceOracle> oracle;
  mot::DoublingHierarchy::Params hp;
  std::unique_ptr<mot::DoublingHierarchy> hierarchy;
  std::unique_ptr<mot::MotPathProvider> provider;
  mot::ChainOptions chain_options;
};

double now_minus(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Cross-checks a recovered tracker against the live one: identical
// canonical image and agreeing spot queries from a few scattered nodes.
void check_parity(const mot::ChainTracker& live, mot::ChainTracker& other,
                  const World& world, std::size_t num_objects) {
  const mot::durable::StateImage a = live.export_durable_image();
  const mot::durable::StateImage b = other.export_durable_image();
  MOT_CHECK(a.digest() == b.digest());
  MOT_CHECK(a == b);
  const std::size_t n = world.graph.num_nodes();
  for (ObjectId object = 0; object < num_objects; object += 7) {
    const NodeId from = static_cast<NodeId>((object * 131) % n);
    const mot::QueryResult got = other.query(from, object);
    MOT_CHECK(got.found);
    MOT_CHECK(got.proxy == live.proxy_of(object));
  }
}

// Rebuild answers match on proxies but not on chain structure (a fresh
// publish has no splice history), so only the queries are checked.
void check_answers(const mot::ChainTracker& live, mot::ChainTracker& other,
                   const World& world, std::size_t num_objects) {
  const std::size_t n = world.graph.num_nodes();
  for (ObjectId object = 0; object < num_objects; object += 7) {
    const NodeId from = static_cast<NodeId>((object * 131) % n);
    const mot::QueryResult got = other.query(from, object);
    MOT_CHECK(got.found);
    MOT_CHECK(got.proxy == live.proxy_of(object));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const mot::bench::CommonFlags common = mot::bench::parse_common(
      argc, argv,
      "durable restore vs full rebuild: snapshot + journal-suffix replay "
      "against hierarchy reconstruction + republish");

  std::vector<std::size_t> sides = mot::bench::parse_size_list(common.sizes);
  if (sides.empty()) sides = common.full ? std::vector<std::size_t>{8, 16, 24, 32}
                                         : std::vector<std::size_t>{8, 16, 24};
  const int reps = common.full ? 9 : 5;
  const std::string dir =
      common.snapshot_dir.empty() ? "micro_durable_store" : common.snapshot_dir;

  mot::Table table({"nodes", "objects", "journal", "snap KiB", "rebuild ms",
                    "restore ms", "speedup"});

  for (const std::size_t side : sides) {
    World world(side, common.base_seed);
    const std::size_t n = world.graph.num_nodes();
    const std::size_t num_objects =
        common.objects != 0 ? common.objects : std::max<std::size_t>(8, n / 4);
    const std::size_t num_moves =
        common.moves != 0 ? common.moves : num_objects * 16;

    mot::durable::DurableStore store({dir, common.fsync_mode});
    MOT_CHECK(store.ok());

    // Live run: publish, then walk the objects under the store's natural
    // operating mode — periodic snapshot-triggered compaction (the chaos
    // harness compacts every round the same way). The journal left behind
    // is the genuine suffix since the last compaction point.
    mot::ChainTracker live("mot", *world.provider, world.chain_options);
    live.use_durability(&store);
    mot::Rng rng = mot::SeedTree(common.base_seed).stream("micro-durable");
    for (ObjectId object = 0; object < num_objects; ++object) {
      live.publish(object, static_cast<NodeId>(rng.below(n)));
    }
    const std::size_t cadence = std::max<std::size_t>(1, num_moves / 8);
    for (std::size_t m = 0; m < num_moves; ++m) {
      if (m % cadence == 0) {
        MOT_CHECK(store.write_snapshot(world.graph, *world.hierarchy,
                                       live.export_durable_image()));
      }
      const ObjectId object = static_cast<ObjectId>(rng.below(num_objects));
      live.move(object, static_cast<NodeId>(rng.below(n)));
    }
    store.commit();
    live.use_durability(nullptr);

    // (a) cold rebuild: MIS refinement + republish at physical positions.
    const double rebuild_s = mot::bench::repeat_trimmed(reps, [&](int) {
      const auto start = std::chrono::steady_clock::now();
      auto hierarchy =
          mot::DoublingHierarchy::build(world.graph, *world.oracle, world.hp);
      mot::MotPathProvider provider(*hierarchy, mot::MotOptions{
                                                    .use_parent_sets = false,
                                                    .use_special_parents = true,
                                                });
      mot::ChainTracker rebuilt("mot", provider, world.chain_options);
      for (ObjectId object = 0; object < num_objects; ++object) {
        rebuilt.publish(object, live.proxy_of(object));
      }
      const double wall = now_minus(start);
      check_answers(live, rebuilt, world, num_objects);
      return wall;
    });

    // (b) restore: snapshot decode + CSR rehydration + journal replay.
    std::uint64_t journal_replayed = 0;
    const double restore_s = mot::bench::repeat_trimmed(reps, [&](int) {
      const auto start = std::chrono::steady_clock::now();
      mot::durable::DurableStore::RestoreResult result =
          store.restore(world.graph);
      MOT_CHECK(result.restored());
      auto hierarchy = mot::DoublingHierarchy::from_state(
          world.graph, *world.oracle, result.hierarchy);
      MOT_CHECK(hierarchy != nullptr);
      mot::MotPathProvider provider(*hierarchy, mot::MotOptions{
                                                    .use_parent_sets = false,
                                                    .use_special_parents = true,
                                                });
      mot::ChainTracker restored("mot", provider, world.chain_options);
      restored.restore_durable_image(result.image);
      const double wall = now_minus(start);
      journal_replayed = result.journal_replayed;
      check_parity(live, restored, world, num_objects);
      return wall;
    });

    table.begin_row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(num_objects))
        .cell(journal_replayed)
        .cell(static_cast<double>(store.stats().snapshot_bytes) / 1024.0, 1)
        .cell(rebuild_s * 1e3, 3)
        .cell(restore_s * 1e3, 3)
        .cell(rebuild_s / restore_s, 2);

    if (side == sides.back()) {
      mot::durable::export_durable_stats(store.stats(),
                                         mot::obs::MetricsRegistry::global());
    }
  }

  mot::bench::emit("durable restore vs rebuild", table, common);
  return 0;
}
