// Ablation A2 (Definition 3 / Fig. 2): special parents bound the effect
// of detection-path fragmentation on queries. We sweep the SP level
// offset (0 disables the mechanism) and also show the honest cost of the
// SP bookkeeping messages that the paper's accounting excludes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Ablation: special-parent offset sweep (Definition 3)");

  Table table({"sp_offset", "charge_sp_msgs", "maint_ratio", "query_ratio",
               "mean_found_level", "sdl_hit_share"});
  const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
  const std::size_t size = common.full ? 1024 : 256;
  for (const int offset : {0, 1, 2, 3, 4}) {
    for (const bool charge : {false, true}) {
      if (offset == 0 && charge) continue;  // nothing to charge
      OnlineStats maint, query, found, sdl_share;
      for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = common.base_seed + s;
        const Network net = build_grid_network(size, seed);
        TraceParams tp;
        tp.num_objects = common.objects != 0 ? common.objects : 50;
        tp.moves_per_object = common.moves != 0 ? common.moves : 50;
        Rng rng(SeedTree(seed).seed_for("trace"));
        const MovementTrace trace = generate_trace(net.graph(), tp, rng);

        MotOptions options;
        options.use_parent_sets = false;
        options.use_special_parents = offset > 0;
        options.special_parent_offset = offset > 0 ? offset : 1;
        options.charge_special_updates = charge;
        const EdgeRates rates = trace.estimate_rates();
        AlgoInstance instance =
            make_algo(Algo::kMot, net, rates, seed, &options);
        publish_all(*instance.tracker, trace);
        maint.add(run_moves(*instance.tracker, *net.oracle, trace.moves)
                      .aggregate_ratio());

        Rng qrng(SeedTree(seed).seed_for("queries"));
        const auto queries = generate_queries(net.num_nodes(),
                                              tp.num_objects, 200, qrng);
        CostRatioAccumulator query_acc;
        OnlineStats levels;
        for (const QueryOp& op : queries) {
          const NodeId proxy = instance.tracker->proxy_of(op.object);
          const QueryResult r = instance.tracker->query(op.from, op.object);
          query_acc.add(r.cost, net.oracle->distance(op.from, proxy));
          levels.add(r.found_level);
        }
        query.add(query_acc.aggregate_ratio());
        found.add(levels.mean());
        const auto& qs = instance.tracker->query_stats();
        const double hits =
            static_cast<double>(qs.dl_hits + qs.sdl_hits);
        sdl_share.add(hits > 0
                          ? static_cast<double>(qs.sdl_hits) / hits
                          : 0.0);
      }
      table.begin_row()
          .cell(static_cast<std::int64_t>(offset))
          .cell(charge ? "yes" : "no")
          .cell(maint.mean(), 3)
          .cell(query.mean(), 3)
          .cell(found.mean(), 2)
          .cell(sdl_share.mean(), 3);
    }
  }
  bench::emit("Ablation A2: special-parent offset and bookkeeping cost",
              table, common);
  return 0;
}
