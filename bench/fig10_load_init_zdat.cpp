// Figure 10: per-node load of MOT vs Z-DAT after initialization. The
// paper reports 14 Z-DAT nodes with load > 10 and none for MOT.
// Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 10: load per node after init, MOT vs Z-DAT");
  LoadFigureParams params;
  params.num_objects = common.objects != 0 ? common.objects : 100;
  params.moves_per_object = 0;
  params.num_seeds = common.seeds != 0 ? common.seeds : (common.full ? 5 : 3);
  params.num_nodes = common.full ? 1024 : 256;
  params.baseline = Algo::kZdat;
  params.base_seed = common.base_seed;
  bench::emit("Fig. 10: load/node after initialization (MOT vs Z-DAT)",
              run_load_figure(params), common);
  return 0;
}
