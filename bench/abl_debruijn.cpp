// Ablation A3 (Section 5 / Corollary 5.2): routing delegate accesses over
// the embedded de Bruijn graph costs an O(log |X|) hop factor versus
// hypothetically knowing every member's address (direct routing), but
// each node then stores only a constant-size neighbor table.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Ablation: de Bruijn routing vs direct delegate addressing");

  Table table({"nodes", "routing", "maint_ratio", "query_ratio"});
  const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    for (const bool debruijn : {false, true}) {
      OnlineStats maint, query;
      for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = common.base_seed + s;
        const Network net = build_grid_network(size, seed);
        TraceParams tp;
        tp.num_objects = common.objects != 0 ? common.objects : 50;
        tp.moves_per_object = common.moves != 0 ? common.moves : 40;
        Rng rng(SeedTree(seed).seed_for("trace"));
        const MovementTrace trace = generate_trace(net.graph(), tp, rng);

        MotOptions options;
        options.use_parent_sets = false;
        options.load_balance = true;
        options.charge_debruijn_routing = debruijn;
        const EdgeRates rates = trace.estimate_rates();
        AlgoInstance instance =
            make_algo(Algo::kMotLoadBalanced, net, rates, seed, &options);
        publish_all(*instance.tracker, trace);
        maint.add(run_moves(*instance.tracker, *net.oracle, trace.moves)
                      .aggregate_ratio());
        Rng qrng(SeedTree(seed).seed_for("queries"));
        const auto queries = generate_queries(net.num_nodes(),
                                              tp.num_objects, 200, qrng);
        query.add(run_queries(*instance.tracker, *net.oracle, queries)
                      .aggregate_ratio());
      }
      table.begin_row()
          .cell(static_cast<std::uint64_t>(size))
          .cell(debruijn ? "de-bruijn" : "direct")
          .cell(maint.mean(), 3)
          .cell(query.mean(), 3);
    }
  }
  bench::emit("Ablation A3: de Bruijn hop overhead (Cor. 5.2)", table,
              common);
  return 0;
}
