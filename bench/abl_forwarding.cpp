// Ablation A4 (Section 3's "improved algorithm"): delete messages leave
// forwarding pointers behind, so queries whose descent was torn redirect
// immediately instead of re-climbing the hierarchy. Measured under the
// concurrent workload of Figs. 14-15.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Ablation: forwarding pointers for queries overlapping maintenance");

  Table table({"nodes", "forwarding", "query_ratio", "restarts",
               "pointer_redirects", "waits"});
  const std::size_t seeds = common.seeds != 0 ? common.seeds : 3;
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    for (const bool forwarding : {false, true}) {
      OnlineStats ratio, restarts, redirects, waits;
      for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = common.base_seed + s;
        const Network net = build_grid_network(size, seed);
        TraceParams tp;
        tp.num_objects = common.objects != 0 ? common.objects : 50;
        tp.moves_per_object = common.moves != 0 ? common.moves : 60;
        Rng rng(SeedTree(seed).seed_for("trace"));
        const MovementTrace trace = generate_trace(net.graph(), tp, rng);
        const EdgeRates rates = trace.estimate_rates();
        AlgoInstance algo = make_algo(Algo::kMot, net, rates, seed);
        ChainOptions options = algo.chain_options;
        options.forwarding_pointers = forwarding;

        ConcurrentRunParams run;
        run.batch_size = 10;
        run.interleave_queries = true;
        run.seed = SeedTree(seed).seed_for("conc-driver");
        const ConcurrentRunResult result = run_concurrent(
            *algo.provider, options, *net.oracle, trace, run);
        ratio.add(result.queries.aggregate_ratio());
        restarts.add(
            static_cast<double>(result.engine_stats.query_restarts));
        redirects.add(static_cast<double>(
            result.engine_stats.query_pointer_redirects));
        waits.add(static_cast<double>(result.engine_stats.query_waits));
      }
      table.begin_row()
          .cell(static_cast<std::uint64_t>(size))
          .cell(forwarding ? "on" : "off")
          .cell(ratio.mean(), 3)
          .cell(restarts.mean(), 1)
          .cell(redirects.mean(), 1)
          .cell(waits.mean(), 1);
    }
  }
  bench::emit(
      "Ablation A4: Section 3's improved queries (forwarding pointers)",
      table, common);
  return 0;
}
