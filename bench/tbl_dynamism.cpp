// Section 7: adaptability under churn. Nodes join and leave; every
// affected cluster relabels its de Bruijn embedding. The amortized number
// of member updates per event must stay O(1) per cluster — i.e. bounded
// by a constant times the number of clusters a node belongs to.
#include "bench_common.hpp"
#include "core/dynamic.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Section 7: amortized adaptability under churn");

  Table table({"nodes", "clusters", "events", "amortized_updates",
               "updates_per_cluster", "leader_handoffs", "rebuilds"});
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    const Network net = build_grid_network(size, common.base_seed);
    DynamicClusterSet clusters(*net.hierarchy, {common.base_seed, 2.0});
    Rng rng(SeedTree(common.base_seed).seed_for("churn"));

    const std::size_t events =
        common.moves != 0 ? common.moves * 10 : 500;
    std::vector<NodeId> out;
    std::size_t handoffs = 0;
    for (std::size_t e = 0; e < events; ++e) {
      if (!out.empty() && rng.chance(0.5)) {
        const std::size_t pick = rng.below(out.size());
        clusters.node_joins(out[pick]);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const auto victim =
            static_cast<NodeId>(rng.below(net.num_nodes()));
        if (std::find(out.begin(), out.end(), victim) != out.end()) {
          continue;
        }
        handoffs += clusters.node_leaves(victim).leader_handoffs;
        out.push_back(victim);
      }
    }
    table.begin_row()
        .cell(static_cast<std::uint64_t>(net.num_nodes()))
        .cell(static_cast<std::uint64_t>(clusters.num_clusters()))
        .cell(static_cast<std::uint64_t>(events))
        .cell(clusters.amortized_updates(), 2)
        .cell(clusters.amortized_updates_per_cluster(), 2)
        .cell(static_cast<std::uint64_t>(handoffs))
        .cell(static_cast<std::uint64_t>(clusters.rebuilds()));
  }
  bench::emit("Section 7: churn adaptability (O(1) amortized per cluster)",
              table, common);
  return 0;
}
