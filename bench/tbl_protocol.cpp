// The distributed (message-passing) runtime versus the centralized
// engine: identical communication cost per operation by construction
// (verified by tests), so this table reports the protocol-level facts a
// deployment cares about — messages per operation and their split.
#include "bench_common.hpp"
#include "proto/distributed_mot.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Distributed protocol: messages and cost per operation");

  Table table({"nodes", "msgs_per_move", "dist_per_move", "msgs_per_query",
               "dist_per_query", "parked", "redirected"});
  for (const std::size_t size : paper_grid_sizes(common.full)) {
    const Network net = build_grid_network(size, common.base_seed);
    MotOptions options;
    options.use_parent_sets = false;
    options.seed = common.base_seed;
    const MotPathProvider provider(*net.hierarchy, options);

    Simulator sim;
    proto::DistributedMot runtime(provider, sim,
                                  make_mot_chain_options(options));

    const std::size_t num_objects =
        common.objects != 0 ? common.objects : 30;
    TraceParams tp;
    tp.num_objects = num_objects;
    tp.moves_per_object = common.moves != 0 ? common.moves : 50;
    Rng rng(SeedTree(common.base_seed).seed_for("trace"));
    const MovementTrace trace = generate_trace(net.graph(), tp, rng);

    for (ObjectId o = 0; o < num_objects; ++o) {
      runtime.publish(o, trace.initial_proxy[o]);
    }
    sim.run();
    const std::uint64_t msgs_after_publish = runtime.stats().messages_sent;
    const Weight dist_after_publish = runtime.meter().total_distance();

    Weight move_cost = 0.0;
    for (const MoveOp& op : trace.moves) {
      runtime.move(op.object, op.to,
                   [&](const MoveResult& r) { move_cost += r.cost; });
      sim.run();
    }
    const std::uint64_t msgs_after_moves = runtime.stats().messages_sent;

    Rng qrng(SeedTree(common.base_seed).seed_for("queries"));
    const auto queries =
        generate_queries(net.num_nodes(), num_objects, 200, qrng);
    Weight query_cost = 0.0;
    for (const QueryOp& op : queries) {
      runtime.query(op.from, op.object,
                    [&](const QueryResult& r) { query_cost += r.cost; });
      sim.run();
    }
    runtime.validate_quiescent();

    const double moves_count = static_cast<double>(trace.moves.size());
    const double query_count = static_cast<double>(queries.size());
    table.begin_row()
        .cell(static_cast<std::uint64_t>(net.num_nodes()))
        .cell(static_cast<double>(msgs_after_moves - msgs_after_publish) /
                  moves_count,
              1)
        .cell(move_cost / moves_count, 1)
        .cell(static_cast<double>(runtime.stats().messages_sent -
                                  msgs_after_moves) /
                  query_count,
              1)
        .cell(query_cost / query_count, 1)
        .cell(runtime.stats().queries_parked)
        .cell(runtime.stats().queries_redirected);
    (void)dist_after_publish;
  }
  bench::emit("Distributed MOT protocol: per-operation message budget",
              table, common);
  return 0;
}
