// Figure 11: per-node load of MOT vs Z-DAT after 10 maintenance
// operations per object. The paper reports 11 Z-DAT nodes with load > 10
// and none for MOT. Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 11: load per node after maintenance, MOT vs Z-DAT");
  LoadFigureParams params;
  params.num_objects = common.objects != 0 ? common.objects : 100;
  params.moves_per_object = common.moves != 0 ? common.moves : 10;
  params.num_seeds = common.seeds != 0 ? common.seeds : (common.full ? 5 : 3);
  params.num_nodes = common.full ? 1024 : 256;
  params.baseline = Algo::kZdat;
  params.base_seed = common.base_seed;
  bench::emit(
      "Fig. 11: load/node after 10 maintenance ops/object (MOT vs Z-DAT)",
      run_load_figure(params), common);
  return 0;
}
