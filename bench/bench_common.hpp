// Shared boilerplate for the figure benches: common flags, banner and
// CSV output. Every bench runs with no arguments at a laptop-friendly
// scale; --full reproduces the paper's scale (1000 moves/object, the
// full 10..1024-node size sweep, 5 seeds).
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "expt/fig_runners.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace mot::bench {

struct CommonFlags {
  bool full = false;
  std::uint64_t objects = 0;   // 0 = figure default
  std::uint64_t moves = 0;     // 0 = scale default
  std::uint64_t seeds = 0;     // 0 = scale default
  std::uint64_t base_seed = 42;
  std::string csv;             // optional CSV output path
};

inline CommonFlags parse_common(int argc, char** argv,
                                const std::string& description) {
  CommonFlags common;
  Flags flags(description);
  flags.register_flag("full", &common.full,
                      "run at the paper's scale (slow on one core)");
  flags.register_flag("objects", &common.objects,
                      "override the number of mobile objects");
  flags.register_flag("moves", &common.moves,
                      "override maintenance operations per object");
  flags.register_flag("seeds", &common.seeds,
                      "override the number of seeded repetitions");
  flags.register_flag("seed", &common.base_seed, "base experiment seed");
  flags.register_flag("csv", &common.csv, "also write the table as CSV");
  if (!flags.parse(argc, argv)) std::exit(1);
  set_log_level(LogLevel::kWarn);
  return common;
}

inline SweepParams sweep_from(const CommonFlags& common,
                              std::size_t default_objects,
                              bool concurrent) {
  SweepParams params;
  params.full = common.full;
  params.concurrent = concurrent;
  params.num_objects =
      common.objects != 0 ? common.objects : default_objects;
  params.moves_per_object =
      common.moves != 0 ? common.moves : (common.full ? 1000 : 100);
  params.num_seeds = common.seeds != 0 ? common.seeds
                                       : (common.full ? 5 : 3);
  params.base_seed = common.base_seed;
  return params;
}

inline void emit(const std::string& title, const Table& table,
                 const CommonFlags& common) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << std::flush;
  if (!common.csv.empty()) {
    std::ostringstream csv;
    table.write_csv(csv);
    write_text_file(common.csv, csv.str());
  }
}

}  // namespace mot::bench
