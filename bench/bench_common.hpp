// Shared boilerplate for the figure benches: common flags, banner and
// CSV output. Every bench runs with no arguments at a laptop-friendly
// scale; --full reproduces the paper's scale (1000 moves/object, the
// full 10..1024-node size sweep, 5 seeds).
//
// Telemetry: `--emit-json <path>` writes a machine-readable run record
// (config, every emitted table, phase timings, metrics snapshot, git
// rev); `--trace-jsonl <path>` streams structured trace events;
// `--log-level` controls stderr verbosity.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "durable/journal.hpp"
#include "expt/fig_runners.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/phase_timer.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace mot::bench {

struct CommonFlags {
  bool full = false;
  std::uint64_t objects = 0;   // 0 = figure default
  std::uint64_t moves = 0;     // 0 = scale default
  std::uint64_t seeds = 0;     // 0 = scale default
  std::uint64_t base_seed = 42;
  std::uint64_t threads = 0;   // 0 = hardware_concurrency
  std::string sizes;           // comma-separated grid-size override
  std::string csv;             // optional CSV output path
  std::string emit_json;       // optional run-record JSON path
  std::string trace_jsonl;     // optional trace event stream path
  std::string log_level = "warn";
  // Durability knobs, shared by every bench that attaches a
  // DurableStore (chaos_runner, micro_durable). Empty dir = off.
  std::string snapshot_dir;
  std::string journal_fsync = "group";
  durable::FsyncMode fsync_mode = durable::FsyncMode::kGroup;
};

// Parses a comma-separated size list ("16,64,256"). Empty input yields
// an empty vector (= use the figure's default sizes).
inline std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> sizes;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    sizes.push_back(static_cast<std::size_t>(std::stoull(token)));
  }
  return sizes;
}

namespace detail {

inline obs::RunRecord& run_record() {
  static obs::RunRecord record;
  return record;
}

inline std::string& emit_json_path() {
  static std::string path;
  return path;
}

inline std::unique_ptr<obs::JsonlFileSink>& trace_sink() {
  static std::unique_ptr<obs::JsonlFileSink> sink;
  return sink;
}

inline CsvStacker& csv_stacker() {
  static CsvStacker stacker;
  return stacker;
}

inline std::string bench_name_from(const char* argv0) {
  std::string name = argv0 != nullptr ? argv0 : "bench";
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

// Registered with atexit by parse_common: prints phase timings and
// writes the run record after main() returns, so every exit path that
// reaches a normal process shutdown emits telemetry.
inline void finalize_telemetry() {
  if (trace_sink() != nullptr) {
    trace_sink()->flush();
    obs::install_trace_sink(nullptr);
    trace_sink().reset();
  }
  const auto phases = obs::PhaseTimers::global().phases();
  if (!phases.empty()) {
    std::fprintf(stderr, "-- phase timings --\n");
    for (const auto& phase : phases) {
      std::fprintf(stderr, "  %-18s %9.3f s  (%llu scopes)\n",
                   phase.name.c_str(), phase.seconds,
                   static_cast<unsigned long long>(phase.count));
      // Per-worker split, only when the phase actually ran on the pool.
      if (phase.by_worker.size() > 1 ||
          (phase.by_worker.size() == 1 &&
           phase.by_worker[0].worker >= 0)) {
        for (const auto& slice : phase.by_worker) {
          std::fprintf(stderr, "    %s%-14d %9.3f s  (%llu scopes)\n",
                       slice.worker < 0 ? "main" : "w",
                       slice.worker < 0 ? 0 : slice.worker, slice.seconds,
                       static_cast<unsigned long long>(slice.count));
        }
      }
    }
  }
  if (!emit_json_path().empty() && !run_record().write(emit_json_path())) {
    std::fprintf(stderr, "failed to write run record to %s\n",
                 emit_json_path().c_str());
  }
}

}  // namespace detail

inline CommonFlags parse_common(int argc, char** argv,
                                const std::string& description) {
  CommonFlags common;
  Flags flags(description);
  flags.register_flag("full", &common.full,
                      "run at the paper's scale (slow on one core)");
  flags.register_flag("objects", &common.objects,
                      "override the number of mobile objects");
  flags.register_flag("moves", &common.moves,
                      "override maintenance operations per object");
  flags.register_flag("seeds", &common.seeds,
                      "override the number of seeded repetitions");
  flags.register_flag("seed", &common.base_seed, "base experiment seed");
  flags.register_flag("threads", &common.threads,
                      "worker threads for sweeps (0 = all cores)");
  flags.register_flag("sizes", &common.sizes,
                      "comma-separated grid sizes (overrides defaults)");
  flags.register_flag("csv", &common.csv, "also write the table as CSV");
  flags.register_flag("emit-json", &common.emit_json,
                      "write a machine-readable run record (BENCH_*.json)");
  flags.register_flag("trace-jsonl", &common.trace_jsonl,
                      "stream structured trace events to this JSONL file");
  flags.register_flag("log-level", &common.log_level,
                      "stderr log level: debug|info|warn|error");
  flags.register_flag("snapshot-dir", &common.snapshot_dir,
                      "durability: directory for snapshot + journal");
  flags.register_flag("journal-fsync", &common.journal_fsync,
                      "durability fsync policy: none|group|always");
  if (!flags.parse(argc, argv)) std::exit(1);
  if (!durable::parse_fsync_mode(common.journal_fsync,
                                 &common.fsync_mode)) {
    std::fprintf(stderr, "unknown --journal-fsync '%s'\n",
                 common.journal_fsync.c_str());
    std::exit(1);
  }
  const std::optional<LogLevel> level = parse_log_level(common.log_level);
  if (!level.has_value()) {
    std::fprintf(stderr, "unknown --log-level '%s'\n",
                 common.log_level.c_str());
    std::exit(1);
  }
  set_log_level(*level);
  par::set_default_workers(static_cast<std::size_t>(common.threads));

  obs::RunRecord& record = detail::run_record();
  record.set_bench(detail::bench_name_from(argc > 0 ? argv[0] : nullptr));
  record.set_description(description);
  record.set_command_line(argc, argv);
  record.add_config("full", common.full);
  record.add_config("objects", common.objects);
  record.add_config("moves", common.moves);
  record.add_config("seeds", common.seeds);
  record.add_config("seed", common.base_seed);
  record.add_config("threads",
                    static_cast<std::uint64_t>(par::default_workers()));
  if (!common.sizes.empty()) record.add_config("sizes", common.sizes);
  if (!common.snapshot_dir.empty()) {
    record.add_config("snapshot_dir", common.snapshot_dir);
    record.add_config("journal_fsync", common.journal_fsync);
  }
  detail::emit_json_path() = common.emit_json;
  // A re-parse in the same process (tests, embedded drivers) must not
  // leave the previous run's trace stream installed: uninstall before
  // destroying, or the global sink would dangle until the new install —
  // and linger forever when the re-parse has no --trace-jsonl. Mirrors
  // the CsvStacker reset below.
  if (detail::trace_sink() != nullptr) {
    detail::trace_sink()->flush();
    if (obs::trace_sink() == detail::trace_sink().get()) {
      obs::install_trace_sink(nullptr);
    }
    detail::trace_sink().reset();
  }
  if (!common.trace_jsonl.empty()) {
    detail::trace_sink() =
        std::make_unique<obs::JsonlFileSink>(common.trace_jsonl);
    if (!detail::trace_sink()->ok()) {
      std::fprintf(stderr, "cannot open --trace-jsonl path %s\n",
                   common.trace_jsonl.c_str());
      std::exit(1);
    }
    obs::install_trace_sink(detail::trace_sink().get());
  }
  // Touch the process-wide singletons before registering the atexit
  // hook: statics die in reverse construction order, so constructing
  // them here keeps them alive inside finalize_telemetry().
  obs::PhaseTimers::global();
  obs::MetricsRegistry::global();
  std::atexit(detail::finalize_telemetry);
  // A fresh run truncates its CSV targets: without this, a process that
  // parses twice (tests, embedded drivers) would append a second copy of
  // every table to the file left by the first run.
  detail::csv_stacker().reset();
  return common;
}

inline SweepParams sweep_from(const CommonFlags& common,
                              std::size_t default_objects,
                              bool concurrent) {
  SweepParams params;
  params.full = common.full;
  params.concurrent = concurrent;
  params.num_objects =
      common.objects != 0 ? common.objects : default_objects;
  params.moves_per_object =
      common.moves != 0 ? common.moves : (common.full ? 1000 : 100);
  params.num_seeds = common.seeds != 0 ? common.seeds
                                       : (common.full ? 5 : 3);
  params.base_seed = common.base_seed;
  params.sizes = parse_size_list(common.sizes);
  return params;
}

inline void emit(const std::string& title, const Table& table,
                 const CommonFlags& common) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << std::flush;
  detail::run_record().add_table(title, table);
  if (!common.csv.empty()) {
    // The first table truncates the CSV; later ones stack under a
    // `# <title>` comment. The stacker keys paths canonically and is
    // reset by parse_common, so neither spelling the path two ways nor
    // re-running a bench in one process duplicates table blocks.
    detail::csv_stacker().write(common.csv, title, table);
  }
}

}  // namespace mot::bench
