// Chaos schedule explorer CLI: enumerates seeded random fault schedules
// (crashes, partitions, isolations) against the distributed MOT runtime
// on the acceptance topologies, audits invariants at quiescence, and on
// violation prints a greedily shrunk minimal repro plus the exact replay
// command. `--inject-bug` enables a deliberate recovery defect so the
// detection + shrinking path itself can be exercised; the process then
// succeeds only if the bug is caught.
//
//   chaos_runner --seeds 0..99 --topology all          # must stay green
//   chaos_runner --seeds 0..9 --inject-bug             # must catch + shrink
//   chaos_runner --topology grid --replay-seed 17 --keep 0,2   # repro
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "chaos/churn.hpp"
#include "chaos/schedule.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace mot;

bool parse_seed_range(const std::string& text, std::uint64_t* lo,
                      std::uint64_t* hi) {
  try {
    const auto dots = text.find("..");
    if (dots == std::string::npos) {
      *lo = *hi = std::stoull(text);
    } else {
      *lo = std::stoull(text.substr(0, dots));
      *hi = std::stoull(text.substr(dots + 2));
    }
  } catch (...) {
    return false;
  }
  return *lo <= *hi;
}

std::vector<std::size_t> parse_index_list(const std::string& text) {
  std::vector<std::size_t> indices;
  std::size_t start = 0;
  while (start < text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) {
      indices.push_back(std::stoull(text.substr(start, comma - start)));
    }
    start = comma + 1;
  }
  return indices;
}

std::vector<chaos::Topology> parse_topologies(const std::string& text) {
  if (text == "grid") return {chaos::Topology::kGrid};
  if (text == "torus") return {chaos::Topology::kTorus};
  if (text == "ring") return {chaos::Topology::kRing};
  if (text == "all") {
    return {chaos::Topology::kGrid, chaos::Topology::kTorus,
            chaos::Topology::kRing};
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::string seeds = "0..19";
  std::string topology = "all";
  std::uint64_t objects = 8;
  std::uint64_t rounds = 6;
  std::uint64_t events = 5;
  bool inject_bug = false;
  bool churn = false;
  bool overload = false;
  std::uint64_t burst_events = 2;
  bool adaptive = false;
  std::uint64_t correlated_events = 2;
  std::uint64_t replay_seed = UINT64_MAX;  // UINT64_MAX = explorer mode
  std::string keep;
  bool durability = false;
  std::uint64_t restart_events = 2;
  std::string snapshot_dir = "chaos_durable_store";
  std::string journal_fsync = "group";
  bool inject_corruption = false;

  Flags flags(
      "Chaos explorer: seeded fault schedules vs the distributed MOT "
      "runtime, with invariant audits and schedule shrinking");
  flags.register_flag("seeds", &seeds, "seed range A..B (or one seed N)");
  flags.register_flag("topology", &topology, "grid | torus | ring | all");
  flags.register_flag("objects", &objects, "mobile objects per run");
  flags.register_flag("rounds", &rounds, "traffic rounds per run");
  flags.register_flag("events", &events, "fault events per schedule");
  flags.register_flag("inject-bug", &inject_bug,
                      "enable a deliberate recovery defect; succeed only "
                      "if the explorer catches and shrinks it");
  flags.register_flag("churn", &churn,
                      "also run the join/leave/crash churn driver");
  flags.register_flag("overload", &overload,
                      "attach the finite-capacity service model and add "
                      "burst-traffic events to every schedule");
  flags.register_flag("burst-events", &burst_events,
                      "burst-traffic events per schedule (with --overload)");
  flags.register_flag("adaptive", &adaptive,
                      "attach the self-tuning control plane (implies "
                      "--overload): AIMD credit windows, RED/admission "
                      "tuning, load-aware replica placement");
  flags.register_flag("correlated-events", &correlated_events,
                      "correlated burst+crash+partition groups per "
                      "schedule (with --adaptive)");
  flags.register_flag("replay-seed", &replay_seed,
                      "replay one schedule by seed instead of exploring");
  flags.register_flag("keep", &keep,
                      "comma-separated event indices kept on replay "
                      "(empty = all)");
  flags.register_flag("durability", &durability,
                      "crash-restart-replay audit: run every seed once "
                      "with a DurableStore + restart events and once as "
                      "a restart-free-restore reference, and require "
                      "identical answer digests");
  flags.register_flag("restart-events", &restart_events,
                      "crash-restart events per schedule (with "
                      "--durability)");
  flags.register_flag("snapshot-dir", &snapshot_dir,
                      "durability: directory for snapshot + journal");
  flags.register_flag("journal-fsync", &journal_fsync,
                      "durability fsync policy: none|group|always");
  flags.register_flag("inject-corruption", &inject_corruption,
                      "flip a journal byte before every restore; succeed "
                      "only if the typed fallback path fires and the run "
                      "stays green");
  if (!flags.parse(argc, argv)) return 1;
  if (adaptive) overload = true;  // the controller needs the load signals
  durable::FsyncMode fsync_mode = durable::FsyncMode::kGroup;
  if (!durable::parse_fsync_mode(journal_fsync, &fsync_mode)) {
    std::fprintf(stderr, "bad --journal-fsync '%s'\n",
                 journal_fsync.c_str());
    return 1;
  }

  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 0;
  if (!parse_seed_range(seeds, &seed_lo, &seed_hi)) {
    std::fprintf(stderr, "bad --seeds '%s' (want A..B)\n", seeds.c_str());
    return 1;
  }
  const std::vector<chaos::Topology> topologies =
      parse_topologies(topology);
  if (topologies.empty()) {
    std::fprintf(stderr, "bad --topology '%s'\n", topology.c_str());
    return 1;
  }

  bool all_ok = true;

  if (replay_seed != UINT64_MAX) {
    // Replay mode: regenerate the schedule, keep only the listed events,
    // run once. Succeeds when the violation reproduces.
    for (const chaos::Topology topo : topologies) {
      chaos::RunnerParams params;
      params.topology = topo;
      params.num_objects = objects;
      params.rounds = static_cast<int>(rounds);
      params.events_per_schedule = static_cast<int>(events);
      params.inject_recovery_bug = inject_bug;
      params.overload = overload;
      params.burst_events = overload ? static_cast<int>(burst_events) : 0;
      params.adaptive = adaptive;
      params.correlated_events =
          adaptive ? static_cast<int>(correlated_events) : 0;
      if (overload) {
        params.overload_config.service_rate = 0.5;
        params.overload_config.queue_capacity = 8;
        params.overload_config.degrade_fraction = 0.25;
      }
      chaos::ChaosRunner runner(params);

      chaos::ScheduleParams sp;
      sp.rounds = params.rounds;
      sp.num_events = params.events_per_schedule;
      sp.num_nodes = runner.net().num_nodes();
      sp.burst_events = params.burst_events;
      sp.correlated_events = params.correlated_events;
      chaos::ChaosSchedule schedule =
          chaos::generate_schedule(replay_seed, sp);
      if (!keep.empty()) {
        std::vector<chaos::FaultEvent> kept;
        for (const std::size_t index : parse_index_list(keep)) {
          if (index < schedule.events.size()) {
            kept.push_back(schedule.events[index]);
          }
        }
        schedule.events = std::move(kept);
      }
      std::cout << "== replay on " << chaos::topology_name(topo)
                << " ==\n" << schedule.describe() << "\n";
      const chaos::RunReport report = runner.run(schedule);
      if (report.ok()) {
        std::cout << "no violation reproduced\n";
        all_ok = false;
      } else {
        std::cout << "violation reproduced (round "
                  << report.violation_round << "):\n";
        for (const std::string& line : report.violations) {
          std::cout << "  " << line << "\n";
        }
      }
    }
    return all_ok ? 0 : 1;
  }

  if (durability) {
    // Crash-restart-replay audit: each seed runs twice on identical
    // schedules — once durable (kRestart events tear the runtime down
    // and restore it from snapshot + journal) and once as the timing
    // reference (kRestart only drains). Identical worlds must answer
    // identically, digest for digest.
    Table table({"topology", "seeds", "restarts", "restores", "fallbacks",
                 "replayed", "digest_mismatches", "violations"});
    for (const chaos::Topology topo : topologies) {
      chaos::RunnerParams base;
      base.topology = topo;
      base.num_objects = objects;
      base.rounds = static_cast<int>(rounds);
      base.events_per_schedule = static_cast<int>(events);
      base.restart_events = static_cast<int>(restart_events);
      chaos::RunnerParams dparams = base;
      dparams.durability = true;
      dparams.snapshot_dir = snapshot_dir;
      dparams.journal_fsync = fsync_mode;
      dparams.corrupt_journal = inject_corruption;
      chaos::ChaosRunner durable_runner(dparams);
      chaos::ChaosRunner reference_runner(base);

      chaos::ScheduleParams sp;
      sp.rounds = base.rounds;
      sp.num_events = base.events_per_schedule;
      sp.num_nodes = durable_runner.net().num_nodes();
      sp.restart_events = base.restart_events;

      std::size_t restarts = 0;
      std::size_t restores = 0;
      std::size_t fallbacks = 0;
      std::uint64_t replayed = 0;
      std::size_t digest_mismatches = 0;
      std::size_t violations = 0;
      for (std::uint64_t seed = seed_lo;; ++seed) {
        const chaos::ChaosSchedule schedule =
            chaos::generate_schedule(seed, sp);
        const chaos::RunReport durable_report =
            durable_runner.run(schedule);
        const chaos::RunReport reference_report =
            reference_runner.run(schedule);
        restarts += durable_report.restarts;
        restores += durable_report.restores;
        fallbacks += durable_report.restore_fallbacks;
        replayed += durable_report.journal_replayed;
        for (const chaos::RunReport* report :
             {&durable_report, &reference_report}) {
          if (report->ok()) continue;
          ++violations;
          std::cout << "!! "
                    << (report == &durable_report ? "durable"
                                                  : "reference")
                    << " run violation on " << chaos::topology_name(topo)
                    << " at seed " << seed << " (round "
                    << report->violation_round << "):\n";
          for (const std::string& line : report->violations) {
            std::cout << "  " << line << "\n";
          }
        }
        // Corrupted journals rebuild from ground truth, which legally
        // changes downstream chaos draws — digests only bind when the
        // restore path itself is intact.
        if (!inject_corruption && durable_report.answer_digest !=
                                      reference_report.answer_digest) {
          ++digest_mismatches;
          std::cout << "!! answer digest mismatch on "
                    << chaos::topology_name(topo) << " at seed " << seed
                    << ": durable " << durable_report.answer_digest
                    << " vs reference " << reference_report.answer_digest
                    << "\n";
        }
        if (seed == seed_hi) break;
      }
      table.begin_row()
          .cell(chaos::topology_name(topo))
          .cell(seeds)
          .cell(static_cast<std::uint64_t>(restarts))
          .cell(static_cast<std::uint64_t>(restores))
          .cell(static_cast<std::uint64_t>(fallbacks))
          .cell(replayed)
          .cell(static_cast<std::uint64_t>(digest_mismatches))
          .cell(static_cast<std::uint64_t>(violations));
      if (violations != 0 || digest_mismatches != 0) all_ok = false;
      if (inject_corruption) {
        // The self-check: corruption must actually force the fallback.
        if (restarts != 0 && fallbacks == 0) {
          std::cout << "!! --inject-corruption set but no restore fell "
                       "back on "
                    << chaos::topology_name(topo) << "\n";
          all_ok = false;
        }
      } else if (restarts != restores) {
        std::cout << "!! only " << restores << " of " << restarts
                  << " restarts restored from disk on "
                  << chaos::topology_name(topo) << "\n";
        all_ok = false;
      }
    }
    std::cout << "== chaos durability audit ==\n";
    table.print(std::cout);
    return all_ok ? 0 : 1;
  }

  Table table({"topology", "seeds", "runs", "faults", "skipped", "moves",
               "queries", "failovers", "retries", "violation_seed"});
  for (const chaos::Topology topo : topologies) {
    chaos::RunnerParams params;
    params.topology = topo;
    params.num_objects = objects;
    params.rounds = static_cast<int>(rounds);
    params.events_per_schedule = static_cast<int>(events);
    params.inject_recovery_bug = inject_bug;
    params.overload = overload;
    params.burst_events = overload ? static_cast<int>(burst_events) : 0;
    params.adaptive = adaptive;
    params.correlated_events =
        adaptive ? static_cast<int>(correlated_events) : 0;
    if (overload) {
      params.overload_config.service_rate = 0.5;
      params.overload_config.queue_capacity = 8;
      params.overload_config.degrade_fraction = 0.25;
    }
    chaos::ChaosRunner runner(params);

    // Green-path totals across seeds, for the table.
    std::size_t faults = 0;
    std::size_t skipped = 0;
    std::size_t moves = 0;
    std::size_t queries = 0;
    std::uint64_t failovers = 0;
    std::uint64_t retries = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t window_moves = 0;
    std::uint64_t tuner_steps = 0;
    std::uint64_t replicas_placed = 0;
    std::uint64_t replicas_retired = 0;
    chaos::ExplorerOutcome outcome;
    chaos::ScheduleParams sp;
    sp.rounds = params.rounds;
    sp.num_events = params.events_per_schedule;
    sp.num_nodes = runner.net().num_nodes();
    sp.burst_events = params.burst_events;
    sp.correlated_events = params.correlated_events;
    for (std::uint64_t seed = seed_lo;; ++seed) {
      const chaos::ChaosSchedule schedule =
          chaos::generate_schedule(seed, sp);
      const chaos::RunReport report = runner.run(schedule);
      ++outcome.seeds_run;
      faults += report.faults_applied;
      skipped += report.faults_skipped;
      moves += report.moves_issued;
      queries += report.queries_issued;
      failovers += report.proto_stats.query_failovers;
      retries += report.proto_stats.queries_retried;
      shed += report.service_stats.shed_total();
      degraded += report.proto_stats.queries_degraded;
      breaker_trips += report.proto_stats.breaker_trips;
      window_moves += report.proto_stats.window_increases +
                      report.proto_stats.window_decreases;
      tuner_steps += report.proto_stats.tuner_steps;
      replicas_placed += report.proto_stats.replicas_placed;
      replicas_retired += report.proto_stats.replicas_retired;
      if (!report.ok()) {
        outcome.violation_found = true;
        outcome.seed = seed;
        outcome.schedule = schedule;
        outcome.shrunk = runner.shrink(schedule).schedule;
        outcome.report = runner.run(outcome.shrunk);
        break;
      }
      if (seed == seed_hi) break;
    }
    outcome.total_runs = runner.runs_executed();

    if (overload) {
      // Printed separately so the default table stays byte-identical to
      // runs without the service model.
      std::cout << "overload[" << chaos::topology_name(topo)
                << "]: shed " << shed << ", degraded " << degraded
                << ", breaker trips " << breaker_trips << "\n";
    }
    if (adaptive) {
      std::cout << "adaptive[" << chaos::topology_name(topo)
                << "]: window moves " << window_moves << ", tuner steps "
                << tuner_steps << ", replicas placed " << replicas_placed
                << ", retired " << replicas_retired << "\n";
    }

    table.begin_row()
        .cell(chaos::topology_name(topo))
        .cell(seeds)
        .cell(static_cast<std::uint64_t>(outcome.total_runs))
        .cell(static_cast<std::uint64_t>(faults))
        .cell(static_cast<std::uint64_t>(skipped))
        .cell(static_cast<std::uint64_t>(moves))
        .cell(static_cast<std::uint64_t>(queries))
        .cell(failovers)
        .cell(retries)
        .cell(outcome.violation_found ? std::to_string(outcome.seed)
                                      : std::string("none"));

    if (outcome.violation_found) {
      std::cout << "!! violation on " << chaos::topology_name(topo)
                << " at seed " << outcome.seed << "\n";
      std::cout << "full schedule:\n  " << outcome.schedule.describe()
                << "\n";
      std::cout << "shrunk to " << outcome.shrunk.events.size()
                << " event(s):\n  " << outcome.shrunk.describe() << "\n";
      for (const std::string& line : outcome.report.violations) {
        std::cout << "  violation: " << line << "\n";
      }
      std::string kept;
      for (std::size_t i = 0; i < outcome.schedule.events.size(); ++i) {
        // Map shrunk events back to indices in the generated schedule.
        for (const chaos::FaultEvent& event : outcome.shrunk.events) {
          const chaos::FaultEvent& original = outcome.schedule.events[i];
          if (original.kind == event.kind &&
              original.round == event.round &&
              original.victim == event.victim &&
              original.pivot == event.pivot &&
              original.duration == event.duration) {
            if (!kept.empty()) kept += ",";
            kept += std::to_string(i);
            break;
          }
        }
      }
      std::cout << "replay: chaos_runner --topology "
                << chaos::topology_name(topo) << " --objects " << objects
                << " --rounds " << rounds << " --events " << events
                << " --replay-seed " << outcome.seed << " --keep " << kept
                << (adaptive ? " --adaptive"
                             : (overload ? " --overload" : ""))
                << (inject_bug ? " --inject-bug" : "") << "\n";
      const bool expected =
          inject_bug && outcome.shrunk.events.size() <= 10;
      if (!expected) all_ok = false;
    } else if (inject_bug) {
      std::cout << "!! --inject-bug set but no violation found on "
                << chaos::topology_name(topo) << "\n";
      all_ok = false;
    }
  }
  std::cout << "== chaos explorer ==\n";
  table.print(std::cout);

  if (churn) {
    Table churn_table({"topology", "moves", "queries", "leaves", "crashes",
                       "rejoins", "repaired", "relabels", "handoffs",
                       "violations"});
    for (const chaos::Topology topo : topologies) {
      const chaos::ChaosNet net = chaos::build_chaos_net(topo, 7);
      chaos::ChurnParams cp;
      cp.seed = seed_lo + 1;
      cp.num_objects = objects;
      const chaos::ChurnReport report = chaos::run_churn(net, cp);
      churn_table.begin_row()
          .cell(chaos::topology_name(topo))
          .cell(static_cast<std::uint64_t>(report.moves))
          .cell(static_cast<std::uint64_t>(report.queries))
          .cell(static_cast<std::uint64_t>(report.leaves))
          .cell(static_cast<std::uint64_t>(report.crashes))
          .cell(static_cast<std::uint64_t>(report.rejoins))
          .cell(static_cast<std::uint64_t>(report.entries_repaired))
          .cell(static_cast<std::uint64_t>(report.cluster_updates))
          .cell(static_cast<std::uint64_t>(report.leader_handoffs))
          .cell(static_cast<std::uint64_t>(report.violations.size()));
      for (const std::string& line : report.violations) {
        std::cout << "!! churn violation on "
                  << chaos::topology_name(topo) << ": " << line << "\n";
        all_ok = false;
      }
    }
    std::cout << "== churn driver ==\n";
    churn_table.print(std::cout);
  }

  return all_ok ? 0 : 1;
}
