// The protocol under fire: a message-loss sweep (0..30% drop, plus
// duplication and reordering delays) over the grid, reporting what
// reliability costs — retransmissions, duplicate deliveries, ack RTTs,
// and the distance overhead relative to useful protocol work — and a
// crash-stop demonstration where a chain sensor dies mid-run and the
// structure is repaired while operations keep completing.
#include "bench_common.hpp"
#include "chaos/churn.hpp"
#include "chaos/topology.hpp"
#include "metrics/metrics.hpp"
#include "util/check.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "proto/distributed_mot.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fault injection: loss sweep and crash recovery");

  const std::size_t grid_side = common.full ? 32 : 16;
  const std::size_t num_objects = common.objects != 0 ? common.objects : 100;
  const std::size_t moves_per_object =
      common.moves != 0 ? common.moves : (common.full ? 50 : 10);

  const Network net = build_grid_network(grid_side * grid_side,
                                         common.base_seed);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = common.base_seed;
  const MotPathProvider provider(*net.hierarchy, options);

  TraceParams tp;
  tp.num_objects = num_objects;
  tp.moves_per_object = moves_per_object;
  Rng trace_rng(SeedTree(common.base_seed).seed_for("trace"));
  const MovementTrace trace = generate_trace(net.graph(), tp, trace_rng);
  Rng query_rng(SeedTree(common.base_seed).seed_for("queries"));
  const auto queries =
      generate_queries(net.num_nodes(), num_objects, 2 * num_objects,
                       query_rng);

  Table sweep({"loss_pct", "retx_rate", "dup_rate", "mean_ack_rtt",
               "dist_per_move", "dist_per_query", "transport_ovh"});
  for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    faults::LinkFaults link;
    link.drop = loss;
    link.duplicate = 0.05;
    link.delay = 0.25;
    link.max_extra_delay = 8.0;
    faults::FaultPlan plan;
    plan.set_default_faults(link);
    faults::UnreliableChannel channel(
        plan, SeedTree(common.base_seed).seed_for("channel"));

    Simulator sim;
    proto::DistributedMot runtime(provider, sim,
                                  make_mot_chain_options(options));
    runtime.use_channel(&channel);

    for (ObjectId o = 0; o < num_objects; ++o) {
      runtime.publish(o, trace.initial_proxy[o]);
    }
    sim.run();

    Weight move_cost = 0.0;
    for (const MoveOp& op : trace.moves) {
      runtime.move(op.object, op.to,
                   [&](const MoveResult& r) { move_cost += r.cost; });
      sim.run();
    }
    Weight query_cost = 0.0;
    for (const QueryOp& op : queries) {
      runtime.query(op.from, op.object,
                    [&](const QueryResult& r) { query_cost += r.cost; });
      sim.run();
    }
    runtime.validate_quiescent();

    const proto::ProtocolStats& stats = runtime.stats();
    ReliabilityInputs in;
    in.data_sent = stats.data_sent;
    in.retransmissions = stats.retransmissions;
    in.acks_sent = stats.acks_sent;
    in.duplicates_suppressed = stats.duplicates_suppressed;
    in.ack_rtt_sum = stats.ack_rtt_sum;
    in.ack_rtt_count = stats.ack_rtt_count;
    in.transport_distance = stats.transport_distance;
    in.recovery_distance = stats.recovery_distance;
    in.useful_distance = runtime.meter().total_distance() -
                         stats.transport_distance - stats.recovery_distance;
    const ReliabilitySummary rel = summarize_reliability(in);

    sweep.begin_row()
        .cell(100.0 * loss, 0)
        .cell(rel.retransmission_rate, 3)
        .cell(rel.duplicate_rate, 3)
        .cell(rel.mean_ack_rtt, 2)
        .cell(move_cost / static_cast<double>(trace.moves.size()), 1)
        .cell(query_cost / static_cast<double>(queries.size()), 1)
        .cell(rel.transport_overhead, 3);
  }
  bench::emit("Loss sweep: reliable delivery over an unreliable channel",
              sweep, common);

  // Crash-stop demonstration at 10% loss: a chain sensor (not the root,
  // not hosting any object) dies halfway through the maintenance phase;
  // recovery splices its chains and every later operation still works.
  faults::LinkFaults link;
  link.drop = 0.10;
  link.duplicate = 0.05;
  link.delay = 0.25;
  link.max_extra_delay = 8.0;
  faults::FaultPlan plan;
  plan.set_default_faults(link);
  faults::UnreliableChannel channel(
      plan, SeedTree(common.base_seed).seed_for("crash-channel"));

  Simulator sim;
  proto::DistributedMot runtime(provider, sim,
                                make_mot_chain_options(options));
  runtime.use_channel(&channel);
  for (ObjectId o = 0; o < num_objects; ++o) {
    runtime.publish(o, trace.initial_proxy[o]);
  }
  sim.run();

  const std::size_t half = trace.moves.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    runtime.move(trace.moves[i].object, trace.moves[i].to);
    sim.run();
  }

  NodeId victim = kInvalidNode;
  for (NodeId v = 0; v < net.num_nodes() && victim == kInvalidNode; ++v) {
    if (provider.root_stop().node == v) continue;
    bool hosts_object = false;
    for (ObjectId o = 0; o < num_objects; ++o) {
      if (runtime.physical_position(o) == v) hosts_object = true;
    }
    if (!hosts_object && !runtime.objects_through(v).empty()) victim = v;
  }
  MOT_CHECK(victim != kInvalidNode);
  const std::size_t chained = runtime.objects_through(victim).size();
  channel.crash_now(victim);

  std::size_t skipped = 0;
  for (std::size_t i = half; i < trace.moves.size(); ++i) {
    if (trace.moves[i].to == victim) {
      ++skipped;  // the trace predates the crash; nothing moves to a corpse
      continue;
    }
    runtime.move(trace.moves[i].object, trace.moves[i].to);
    sim.run();
  }
  std::size_t answered = 0;
  std::size_t correct = 0;
  for (const QueryOp& op : queries) {
    if (op.from == victim) continue;
    runtime.query(op.from, op.object, [&](const QueryResult& r) {
      ++answered;
      if (r.proxy == runtime.physical_position(op.object)) ++correct;
    });
    sim.run();
  }
  runtime.validate_quiescent();

  const proto::ProtocolStats& stats = runtime.stats();
  Table crash({"victim", "objs_chained", "splices", "rebuilt", "rescued",
               "recovery_dist", "queries_ok", "moves_skipped"});
  crash.begin_row()
      .cell(static_cast<std::uint64_t>(victim))
      .cell(static_cast<std::uint64_t>(chained))
      .cell(stats.chain_splices)
      .cell(stats.objects_rebuilt)
      .cell(stats.queries_rescued)
      .cell(stats.recovery_distance, 1)
      .cell(static_cast<double>(correct) / static_cast<double>(answered), 3)
      .cell(static_cast<std::uint64_t>(skipped));
  bench::emit("Crash-stop recovery: chain sensor dies mid-run", crash,
              common);

  // Partition-duration sweep: one move per object plus the query batch
  // are issued concurrently, then the grid is cut into halves for the
  // given number of ticks. Carrier sense parks retransmissions at the
  // cut; recovery latency is how long the backlog takes to drain once
  // the partition heals.
  Table part({"cut_ticks", "retx_suppressed", "dist_per_move",
              "dist_per_query", "maint_query_ratio", "recovery_latency"});
  for (const double duration : {0.0, 16.0, 64.0, 256.0}) {
    faults::LinkFaults part_link;
    part_link.drop = 0.05;
    part_link.duplicate = 0.05;
    part_link.delay = 0.25;
    part_link.max_extra_delay = 8.0;
    faults::FaultPlan part_plan;
    part_plan.set_default_faults(part_link);
    faults::UnreliableChannel part_channel(
        part_plan, SeedTree(common.base_seed).seed_for("part-channel"));

    Simulator part_sim;
    proto::DistributedMot part_runtime(provider, part_sim,
                                       make_mot_chain_options(options));
    part_runtime.use_channel(&part_channel);
    for (ObjectId o = 0; o < num_objects; ++o) {
      part_runtime.publish(o, trace.initial_proxy[o]);
    }
    part_sim.run();

    Rng part_rng(SeedTree(common.base_seed).seed_for("part-traffic"));
    Weight maint_cost = 0.0;
    Weight part_query_cost = 0.0;
    std::size_t moves_done = 0;
    std::size_t part_answered = 0;
    for (ObjectId o = 0; o < num_objects; ++o) {
      part_runtime.move(o, part_rng.below(net.num_nodes()),
                        [&](const MoveResult& r) {
                          maint_cost += r.cost;
                          ++moves_done;
                        });
    }
    for (const QueryOp& op : queries) {
      part_runtime.query(op.from, op.object, [&](const QueryResult& r) {
        part_query_cost += r.cost;
        ++part_answered;
      });
    }

    if (duration > 0.0) {
      std::vector<NodeId> west;
      std::vector<NodeId> east;
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        (v < net.num_nodes() / 2 ? west : east).push_back(v);
      }
      const std::uint64_t cut = part_channel.cut_now(west, east);
      part_sim.run_until(part_sim.now() + duration);
      part_channel.heal_now(cut);
    }
    const double heal_time = part_sim.now();
    part_sim.run();
    const double recovery_latency = part_sim.now() - heal_time;
    MOT_CHECK(moves_done == num_objects);
    MOT_CHECK(part_answered == queries.size());
    part_runtime.validate_quiescent();

    const proto::ProtocolStats& ps = part_runtime.stats();
    const double per_move = maint_cost / static_cast<double>(moves_done);
    const double per_query =
        part_query_cost / static_cast<double>(part_answered);
    part.begin_row()
        .cell(duration, 0)
        .cell(ps.retransmits_suppressed)
        .cell(per_move, 1)
        .cell(per_query, 1)
        .cell(per_query > 0.0 ? per_move / per_query : 0.0, 2)
        .cell(recovery_latency, 1);
  }
  bench::emit("Partition sweep: backlog drain after a healed cut", part,
              common);

  // Churn-rate sweep: fixed move/query traffic while the rate of
  // join/leave/crash events scales; reports the realized churn rate per
  // 100 operations, the amortized cluster relabeling work per event, and
  // whether every query still answered with the true position.
  Table churn_sweep({"churn_per_burst", "events_per_100_ops",
                     "relabels_per_event", "repaired", "handoffs",
                     "queries_ok"});
  const chaos::ChaosNet chaos_net =
      chaos::build_chaos_net(chaos::Topology::kGrid, common.base_seed);
  for (const int churn_per_burst : {0, 1, 2, 4}) {
    chaos::ChurnParams cp;
    cp.seed = common.base_seed;
    cp.bursts = 10;
    cp.churn_per_burst = churn_per_burst;
    cp.moves_per_burst = 10;
    cp.queries_per_burst = 10;
    cp.num_objects = 10;
    const chaos::ChurnReport report = chaos::run_churn(chaos_net, cp);
    const double ops = static_cast<double>(report.moves + report.queries);
    const double events =
        static_cast<double>(report.leaves + report.crashes + report.rejoins);
    churn_sweep.begin_row()
        .cell(static_cast<std::uint64_t>(churn_per_burst))
        .cell(ops > 0.0 ? 100.0 * events / ops : 0.0, 1)
        .cell(events > 0.0
                  ? static_cast<double>(report.cluster_updates) / events
                  : 0.0,
              1)
        .cell(static_cast<std::uint64_t>(report.entries_repaired))
        .cell(static_cast<std::uint64_t>(report.leader_handoffs))
        .cell(report.violations.empty() ? "yes" : "NO");
    MOT_CHECK(report.violations.empty());
  }
  bench::emit("Churn sweep: cluster adaptation vs join/leave/crash rate",
              churn_sweep, common);
  return 0;
}
