// The protocol under fire: a message-loss sweep (0..30% drop, plus
// duplication and reordering delays) over the grid, reporting what
// reliability costs — retransmissions, duplicate deliveries, ack RTTs,
// and the distance overhead relative to useful protocol work — and a
// crash-stop demonstration where a chain sensor dies mid-run and the
// structure is repaired while operations keep completing.
#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/check.hpp"
#include "faults/fault_plan.hpp"
#include "faults/unreliable_channel.hpp"
#include "proto/distributed_mot.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fault injection: loss sweep and crash recovery");

  const std::size_t grid_side = common.full ? 32 : 16;
  const std::size_t num_objects = common.objects != 0 ? common.objects : 100;
  const std::size_t moves_per_object =
      common.moves != 0 ? common.moves : (common.full ? 50 : 10);

  const Network net = build_grid_network(grid_side * grid_side,
                                         common.base_seed);
  MotOptions options;
  options.use_parent_sets = false;
  options.seed = common.base_seed;
  const MotPathProvider provider(*net.hierarchy, options);

  TraceParams tp;
  tp.num_objects = num_objects;
  tp.moves_per_object = moves_per_object;
  Rng trace_rng(SeedTree(common.base_seed).seed_for("trace"));
  const MovementTrace trace = generate_trace(net.graph(), tp, trace_rng);
  Rng query_rng(SeedTree(common.base_seed).seed_for("queries"));
  const auto queries =
      generate_queries(net.num_nodes(), num_objects, 2 * num_objects,
                       query_rng);

  Table sweep({"loss_pct", "retx_rate", "dup_rate", "mean_ack_rtt",
               "dist_per_move", "dist_per_query", "transport_ovh"});
  for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    faults::LinkFaults link;
    link.drop = loss;
    link.duplicate = 0.05;
    link.delay = 0.25;
    link.max_extra_delay = 8.0;
    faults::FaultPlan plan;
    plan.set_default_faults(link);
    faults::UnreliableChannel channel(
        plan, SeedTree(common.base_seed).seed_for("channel"));

    Simulator sim;
    proto::DistributedMot runtime(provider, sim,
                                  make_mot_chain_options(options));
    runtime.use_channel(&channel);

    for (ObjectId o = 0; o < num_objects; ++o) {
      runtime.publish(o, trace.initial_proxy[o]);
    }
    sim.run();

    Weight move_cost = 0.0;
    for (const MoveOp& op : trace.moves) {
      runtime.move(op.object, op.to,
                   [&](const MoveResult& r) { move_cost += r.cost; });
      sim.run();
    }
    Weight query_cost = 0.0;
    for (const QueryOp& op : queries) {
      runtime.query(op.from, op.object,
                    [&](const QueryResult& r) { query_cost += r.cost; });
      sim.run();
    }
    runtime.validate_quiescent();

    const proto::ProtocolStats& stats = runtime.stats();
    ReliabilityInputs in;
    in.data_sent = stats.data_sent;
    in.retransmissions = stats.retransmissions;
    in.acks_sent = stats.acks_sent;
    in.duplicates_suppressed = stats.duplicates_suppressed;
    in.ack_rtt_sum = stats.ack_rtt_sum;
    in.ack_rtt_count = stats.ack_rtt_count;
    in.transport_distance = stats.transport_distance;
    in.recovery_distance = stats.recovery_distance;
    in.useful_distance = runtime.meter().total_distance() -
                         stats.transport_distance - stats.recovery_distance;
    const ReliabilitySummary rel = summarize_reliability(in);

    sweep.begin_row()
        .cell(100.0 * loss, 0)
        .cell(rel.retransmission_rate, 3)
        .cell(rel.duplicate_rate, 3)
        .cell(rel.mean_ack_rtt, 2)
        .cell(move_cost / static_cast<double>(trace.moves.size()), 1)
        .cell(query_cost / static_cast<double>(queries.size()), 1)
        .cell(rel.transport_overhead, 3);
  }
  bench::emit("Loss sweep: reliable delivery over an unreliable channel",
              sweep, common);

  // Crash-stop demonstration at 10% loss: a chain sensor (not the root,
  // not hosting any object) dies halfway through the maintenance phase;
  // recovery splices its chains and every later operation still works.
  faults::LinkFaults link;
  link.drop = 0.10;
  link.duplicate = 0.05;
  link.delay = 0.25;
  link.max_extra_delay = 8.0;
  faults::FaultPlan plan;
  plan.set_default_faults(link);
  faults::UnreliableChannel channel(
      plan, SeedTree(common.base_seed).seed_for("crash-channel"));

  Simulator sim;
  proto::DistributedMot runtime(provider, sim,
                                make_mot_chain_options(options));
  runtime.use_channel(&channel);
  for (ObjectId o = 0; o < num_objects; ++o) {
    runtime.publish(o, trace.initial_proxy[o]);
  }
  sim.run();

  const std::size_t half = trace.moves.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    runtime.move(trace.moves[i].object, trace.moves[i].to);
    sim.run();
  }

  NodeId victim = kInvalidNode;
  for (NodeId v = 0; v < net.num_nodes() && victim == kInvalidNode; ++v) {
    if (provider.root_stop().node == v) continue;
    bool hosts_object = false;
    for (ObjectId o = 0; o < num_objects; ++o) {
      if (runtime.physical_position(o) == v) hosts_object = true;
    }
    if (!hosts_object && !runtime.objects_through(v).empty()) victim = v;
  }
  MOT_CHECK(victim != kInvalidNode);
  const std::size_t chained = runtime.objects_through(victim).size();
  channel.crash_now(victim);

  std::size_t skipped = 0;
  for (std::size_t i = half; i < trace.moves.size(); ++i) {
    if (trace.moves[i].to == victim) {
      ++skipped;  // the trace predates the crash; nothing moves to a corpse
      continue;
    }
    runtime.move(trace.moves[i].object, trace.moves[i].to);
    sim.run();
  }
  std::size_t answered = 0;
  std::size_t correct = 0;
  for (const QueryOp& op : queries) {
    if (op.from == victim) continue;
    runtime.query(op.from, op.object, [&](const QueryResult& r) {
      ++answered;
      if (r.proxy == runtime.physical_position(op.object)) ++correct;
    });
    sim.run();
  }
  runtime.validate_quiescent();

  const proto::ProtocolStats& stats = runtime.stats();
  Table crash({"victim", "objs_chained", "splices", "rebuilt", "rescued",
               "recovery_dist", "queries_ok", "moves_skipped"});
  crash.begin_row()
      .cell(static_cast<std::uint64_t>(victim))
      .cell(static_cast<std::uint64_t>(chained))
      .cell(stats.chain_splices)
      .cell(stats.objects_rebuilt)
      .cell(stats.queries_rescued)
      .cell(stats.recovery_distance, 1)
      .cell(static_cast<double>(correct) / static_cast<double>(answered), 3)
      .cell(static_cast<std::uint64_t>(skipped));
  bench::emit("Crash-stop recovery: chain sensor dies mid-run", crash,
              common);
  return 0;
}
