// Figure 8: per-node load of MOT vs STUN, 1024-node grid, 100 objects,
// right after the tracking structures are initialized (publish only).
// The paper reports 5 STUN nodes with load > 10 and none for MOT.
// Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 8: load per node after init, MOT vs STUN");
  LoadFigureParams params;
  params.num_objects = common.objects != 0 ? common.objects : 100;
  params.moves_per_object = 0;
  params.num_seeds = common.seeds != 0 ? common.seeds : (common.full ? 5 : 3);
  params.num_nodes = common.full ? 1024 : 256;
  params.baseline = Algo::kStun;
  params.base_seed = common.base_seed;
  bench::emit("Fig. 8: load/node after initialization (MOT vs STUN)",
              run_load_figure(params), common);
  return 0;
}
