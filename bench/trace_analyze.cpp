// trace_analyze: merge per-shard trace JSONL back into causal span
// trees and audit them (DESIGN.md §12).
//
// Feed it the shard-*.jsonl files a traced cluster run left behind (in
// any order — traces are keyed by id, not by file): it re-joins every
// cross-shard walk, then fails loudly if any tree is disconnected
// (multiple roots, orphaned parents, duplicate span ids), if a wire
// frame vanished between shards (encode/decode conservation), or if the
// span-summed charged cost disagrees with the meter total recorded in a
// cluster --status-json (or passed directly via --expect-meter).
//
//   cluster_runner --shards 4 --trace-dir T --status-json T/status.json
//   trace_analyze --status-json T/status.json T/shard-*.jsonl
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace {

// Pulls "meter_total":<number> out of a cluster status JSON. A string
// scan is enough: cluster_runner writes the key exactly once and the
// value is a bare number (see write_status_json).
bool meter_from_status(const std::string& path, double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const char* key = "\"meter_total\":";
  const auto at = text.find(key);
  if (at == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str() + at + std::strlen(key), &end);
  return end != text.c_str() + at + std::strlen(key);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--status-json P | --expect-meter X] [--verbose] "
               "shard-*.jsonl\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string status_json;
  double expect_meter = -1.0;
  bool have_meter = false;
  bool verbose = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--status-json" && i + 1 < argc) {
      status_json = argv[++i];
    } else if (arg == "--expect-meter" && i + 1 < argc) {
      expect_meter = std::strtod(argv[++i], nullptr);
      have_meter = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage(argv[0]);
      return 1;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage(argv[0]);
    return 1;
  }
  if (!status_json.empty()) {
    if (!meter_from_status(status_json, &expect_meter)) {
      std::fprintf(stderr, "cannot read meter_total from %s\n",
                   status_json.c_str());
      return 1;
    }
    have_meter = true;
  }

  mot::obs::TraceAnalyzer analyzer;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!analyzer.add_file(files[i], static_cast<int>(i))) {
      std::fprintf(stderr, "cannot read %s\n", files[i].c_str());
      return 1;
    }
  }
  const mot::obs::TraceReport report = analyzer.report();

  std::size_t max_critical_path = 0;
  std::size_t cross_shard = 0;
  for (const mot::obs::TraceSummary& trace : report.traces) {
    max_critical_path = std::max(max_critical_path, trace.critical_path);
    if (trace.shards > 1) ++cross_shard;
    if (verbose || !trace.connected()) {
      std::printf("trace %016llx  %-14s spans=%-4zu roots=%zu orphans=%zu "
                  "dups=%zu crit=%-3zu shards=%zu cost=%.3f%s\n",
                  static_cast<unsigned long long>(trace.trace_id),
                  trace.root_label.empty() ? "?" : trace.root_label.c_str(),
                  trace.spans, trace.roots, trace.orphans,
                  trace.duplicate_spans, trace.critical_path, trace.shards,
                  trace.cost, trace.connected() ? "" : "  DISCONNECTED");
    }
  }
  std::printf("%zu events (%zu with spans) across %zu files -> %zu traces "
              "(%zu cross-shard), %zu connected, max critical path %zu\n",
              report.events, report.span_events, files.size(),
              report.traces.size(), cross_shard, report.connected,
              max_critical_path);
  std::printf("wire conservation: %llu encodes / %llu decodes; span cost "
              "%.3f + untraced %.3f\n",
              static_cast<unsigned long long>(report.wire_encodes),
              static_cast<unsigned long long>(report.wire_decodes),
              report.span_cost, report.untraced_cost);

  int failures = 0;
  if (analyzer.parse_errors() != 0) {
    std::fprintf(stderr, "FAIL: %zu unparseable lines\n",
                 analyzer.parse_errors());
    ++failures;
  }
  if (report.traces.empty()) {
    std::fprintf(stderr, "FAIL: no traces found (was the run traced?)\n");
    ++failures;
  }
  if (!report.all_connected()) {
    std::fprintf(stderr, "FAIL: %zu of %zu traces disconnected\n",
                 report.traces.size() - report.connected,
                 report.traces.size());
    ++failures;
  }
  if (!report.conserved()) {
    std::fprintf(stderr,
                 "FAIL: wire conservation broken (%llu encodes, %llu "
                 "decodes)\n",
                 static_cast<unsigned long long>(report.wire_encodes),
                 static_cast<unsigned long long>(report.wire_decodes));
    ++failures;
  }
  if (have_meter) {
    // Every charged hop belongs to exactly one span (or is explicitly
    // untraced, e.g. emitted outside any operation), so the two sums
    // must reconcile up to per-shard summation rounding.
    const double traced_total = report.span_cost + report.untraced_cost;
    if (std::abs(traced_total - expect_meter) >
        1e-6 * (1.0 + std::abs(expect_meter))) {
      std::fprintf(stderr,
                   "FAIL: span cost %.6f + untraced %.6f != meter %.6f\n",
                   report.span_cost, report.untraced_cost, expect_meter);
      ++failures;
    } else {
      std::printf("meter reconciliation: %.3f == %.3f OK\n", traced_total,
                  expect_meter);
    }
  }
  return failures == 0 ? 0 : 1;
}
