// Figure 13: maintenance cost ratio, concurrent execution, 1000 objects.
// Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Fig. 13: maintenance cost ratio, concurrent, 1000 objects");
  SweepParams params = bench::sweep_from(common, 1000, true);
  if (!common.full && common.moves == 0) params.moves_per_object = 30;
  bench::emit("Fig. 13: maintenance cost ratio (concurrent, 1000 objects)",
              run_maintenance_sweep(params), common);
  return 0;
}
