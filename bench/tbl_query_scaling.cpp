// Theorem 4.11: MOT's query cost ratio is O(1) in constant-doubling
// networks — the column must stay flat while the network grows 100x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Theorem 4.11: query cost ratio is O(1)");
  SweepParams params = bench::sweep_from(common, 100, false);
  params.algos = {Algo::kMot};
  const Table sweep = run_query_sweep(params);

  Table table({"nodes", "query_ratio"});
  for (std::size_t row = 0; row < sweep.num_rows(); ++row) {
    table.begin_row().cell(sweep.at(row, 0)).cell(sweep.at(row, 1));
  }
  bench::emit("Theorem 4.11: MOT query ratio is flat in n", table, common);
  return 0;
}
