// Figure 5: maintenance cost ratio, one-by-one execution, 1000 objects.
// Same setting as Fig. 4 with 10x the objects. Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv,
      "Fig. 5: maintenance cost ratio, one-by-one, 1000 objects");
  SweepParams params = bench::sweep_from(common, 1000, false);
  if (!common.full && common.moves == 0) {
    // 1000 objects x default moves is the figure's heavy case; keep the
    // no-flag run snappy on one core.
    params.moves_per_object = 30;
  }
  bench::emit("Fig. 5: maintenance cost ratio (one-by-one, 1000 objects)",
              run_maintenance_sweep(params), common);
  return 0;
}
