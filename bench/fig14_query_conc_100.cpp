// Figure 14: query cost ratio, concurrent execution, 100 objects. Each
// object's query is interleaved with its in-flight maintenance batches,
// so queries genuinely overlap maintenance (Section 4.2.2).
// Lower is better.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Fig. 14: query cost ratio, concurrent, 100 objects");
  const SweepParams params = bench::sweep_from(common, 100, true);
  bench::emit("Fig. 14: query cost ratio (concurrent, 100 objects)",
              run_query_sweep(params), common);
  return 0;
}
