// Routing-layer substantiation of the cost model: the paper charges each
// overlay hop its shortest-path distance, which presumes the network's
// routing layer realizes (near-)shortest paths. This table measures the
// stretch and delivery rate of the two routers on the evaluation
// topologies: converged next-hop routing is stretch-1 everywhere; the
// stateless greedy-geographic fallback is stretch-1 on grids and close
// to it on dense geometric fields.
#include "bench_common.hpp"
#include "net/router.hpp"

namespace {

struct NamedGraph {
  std::string name;
  mot::Graph graph;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mot;
  const auto common = bench::parse_common(
      argc, argv, "Routing layer: stretch and delivery per topology");

  Rng build_rng(common.base_seed);
  std::vector<NamedGraph> graphs;
  graphs.push_back({"grid-32x32", make_grid(32, 32)});
  graphs.push_back({"torus-20x20", make_torus(20, 20)});
  graphs.push_back(
      {"geo-dense-300",
       make_random_geometric(300, 20.0, 2.6, build_rng, 64, 0.6)});
  graphs.push_back(
      {"geo-sparse-300",
       make_random_geometric(300, 20.0, 1.9, build_rng, 64, 0.6)});

  Table table({"topology", "router", "mean_stretch", "max_stretch",
               "delivery_rate"});
  const std::size_t samples = common.full ? 2000 : 400;
  for (const NamedGraph& entry : graphs) {
    const auto oracle = make_distance_oracle(entry.graph);
    const ShortestPathRouter sp(entry.graph);
    const GreedyGeographicRouter greedy(entry.graph);
    for (const Router* router :
         std::initializer_list<const Router*>{&sp, &greedy}) {
      Rng rng(SeedTree(common.base_seed).seed_for(entry.name));
      const RouteStretch stretch =
          measure_stretch(entry.graph, *oracle, *router, rng, samples);
      table.begin_row()
          .cell(entry.name)
          .cell(router->name())
          .cell(stretch.mean_stretch, 3)
          .cell(stretch.max_stretch, 3)
          .cell(stretch.delivery_rate(), 3);
    }
  }
  bench::emit("Routing layer: the cost model's shortest-path assumption",
              table, common);
  return 0;
}
