// Micro-benchmarks for overlay construction: MIS levels, sparse covers,
// cluster embeddings.
#include <benchmark/benchmark.h>

#include "micro_gbench.hpp"

#include "debruijn/debruijn.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "hier/general_hierarchy.hpp"
#include "hier/sparse_cover.hpp"

namespace mot {
namespace {

void BM_DoublingHierarchyBuild(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Graph graph = make_grid(side, side);
  const auto oracle = make_distance_oracle(graph);
  DoublingHierarchy::Params params;
  params.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DoublingHierarchy::build(graph, *oracle, params));
  }
  state.SetComplexityN(static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_DoublingHierarchyBuild)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_SparseCoverBuild(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Graph graph = make_grid(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_sparse_cover(graph, 4.0));
  }
}
BENCHMARK(BM_SparseCoverBuild)->Arg(8)->Arg(16);

void BM_GeneralHierarchyBuild(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Graph graph = make_grid(side, side);
  const auto oracle = make_distance_oracle(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeneralHierarchy::build(graph, *oracle, {}));
  }
}
BENCHMARK(BM_GeneralHierarchyBuild)->Arg(8)->Arg(16);

void BM_GroupLookup(benchmark::State& state) {
  const Graph graph = make_grid(16, 16);
  const auto oracle = make_distance_oracle(graph);
  DoublingHierarchy::Params params;
  params.seed = 3;
  const auto hierarchy = DoublingHierarchy::build(graph, *oracle, params);
  Rng rng(5);
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.below(256));
    const int level = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(
                                  hierarchy->height())));
    benchmark::DoNotOptimize(hierarchy->group(u, level));
  }
}
BENCHMARK(BM_GroupLookup);

void BM_DeBruijnRoute(benchmark::State& state) {
  std::vector<NodeId> members(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<NodeId>(i);
  }
  const ClusterEmbedding embedding(members, 7);
  Rng rng(9);
  for (auto _ : state) {
    const auto from =
        static_cast<std::uint32_t>(rng.below(members.size()));
    const auto to = static_cast<std::uint32_t>(rng.below(members.size()));
    benchmark::DoNotOptimize(embedding.route(from, to));
  }
}
BENCHMARK(BM_DeBruijnRoute)->Arg(16)->Arg(64)->Arg(256);

void BM_LubyMisLevel0(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Graph graph = make_grid(side, side);
  MisInstance instance;
  instance.vertices.resize(graph.num_nodes());
  instance.neighbors.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    instance.vertices[v] = v;
    for (const Edge& e : graph.neighbors(v)) {
      instance.neighbors[v].push_back(e.to);
    }
  }
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(luby_mis(instance, rng));
  }
}
BENCHMARK(BM_LubyMisLevel0)->Arg(16)->Arg(32);

}  // namespace
}  // namespace mot

MOT_MICRO_MAIN()
