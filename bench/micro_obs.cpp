// micro_obs: what does observability cost?
//
// Three figures back the DESIGN.md §12 overhead claims:
//   - the unsinked emission guard (`if (obs::tracing())` with no sink
//     installed): one global load and a never-taken branch. Measured
//     with a compiler barrier per iteration — without it the optimizer
//     hoists the load and the loop folds to nothing, which is the real
//     hot-loop behavior and the sense in which unsinked is zero-cost;
//   - cluster throughput traced vs untraced: the same loopback-TCP
//     cluster the parity tests drive (threaded here), timed with no
//     sink, a shared in-memory ring, and a JSONL file sink. Span
//     derivation + sink cost amortize against real protocol and socket
//     work, which is where the <5% ring claim lives (BENCH_obs.json
//     records the run);
//   - raw per-event sink cost, so the cluster numbers can be sanity
//     checked against events x cost-per-event.
//
//   micro_obs --emit-json BENCH_obs.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/mot.hpp"
#include "micro_common.hpp"
#include "graph/generators.hpp"
#include "hier/doubling_hierarchy.hpp"
#include "netio/cluster.hpp"
#include "obs/trace.hpp"
#include "proto/distributed_mot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using mot::NodeId;
using mot::ObjectId;

struct World {
  explicit World(std::size_t side, std::uint64_t hierarchy_seed)
      : graph(mot::make_grid(side, side)),
        oracle(mot::make_distance_oracle(graph)) {
    mot::DoublingHierarchy::Params hp;
    hp.seed = hierarchy_seed;
    hierarchy = mot::DoublingHierarchy::build(graph, *oracle, hp);
    mot::MotOptions options;
    options.use_parent_sets = false;
    options.use_special_parents = true;
    provider = std::make_unique<mot::MotPathProvider>(*hierarchy, options);
    chain_options = mot::make_mot_chain_options(options);
  }

  mot::Graph graph;
  std::unique_ptr<mot::DistanceOracle> oracle;
  std::unique_ptr<mot::DoublingHierarchy> hierarchy;
  std::unique_ptr<mot::MotPathProvider> provider;
  mot::ChainOptions chain_options;
};

// One threaded cluster run (the test harness shape: worker threads +
// in-thread coordinator over real loopback sockets): publish + steps x
// (move + query), returns wall seconds. The caller installs whatever
// sink the variant measures; every worker thread shares it.
double run_cluster(const World& world, std::uint32_t num_shards, int steps,
                   std::uint64_t seed) {
  mot::netio::ClusterCoordinator coordinator(num_shards);
  MOT_CHECK(coordinator.open());
  const std::uint16_t port = coordinator.port();
  std::vector<std::thread> threads;
  std::vector<int> rcs(num_shards, -1);
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    threads.emplace_back([shard, num_shards, port, &world, &rcs] {
      mot::Simulator sim;
      mot::proto::DistributedMot mot(*world.provider, sim,
                                     world.chain_options);
      mot::netio::WorkerConfig config;
      config.shard = shard;
      config.num_shards = num_shards;
      config.coordinator_port = port;
      mot::netio::ShardWorker worker(config, *world.provider, sim, mot);
      rcs[shard] = worker.run();
    });
  }
  MOT_CHECK(coordinator.bootstrap());

  mot::SeedTree seeds(seed);
  mot::Rng rng = seeds.stream("micro-obs");
  constexpr ObjectId kObject = 0;
  NodeId at = 12;
  const auto start = std::chrono::steady_clock::now();
  MOT_CHECK(coordinator.publish(kObject, at));
  for (int i = 0; i < steps; ++i) {
    const auto neighbors = world.graph.neighbors(at);
    at = neighbors[rng.below(neighbors.size())].to;
    MOT_CHECK(coordinator.move(kObject, at).has_value());
    MOT_CHECK(coordinator
                  .query(static_cast<NodeId>(
                             rng.below(world.graph.num_nodes())),
                         kObject)
                  .has_value());
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  coordinator.shutdown();
  for (auto& thread : threads) thread.join();
  for (const int rc : rcs) MOT_CHECK(rc == 0);
  return wall.count();
}

// Nanoseconds per unsinked emission guard. The barrier forces the
// g_sink load every iteration; without it the loop folds away entirely
// (which is the honest hot-loop number: zero).
double unsinked_emit_ns(std::uint64_t iters) {
  mot::obs::install_trace_sink(nullptr);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    asm volatile("" ::: "memory");
    if (mot::obs::tracing()) {
      mot::obs::emit({.type = mot::obs::Ev::kMsgSend, .object = i});
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  return wall.count() * 1e9 / static_cast<double>(iters);
}

// Nanoseconds per event delivered into `sink` (construction included).
double sinked_emit_ns(mot::obs::TraceSink* sink, std::uint64_t iters) {
  mot::obs::TraceSink* previous = mot::obs::install_trace_sink(sink);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (mot::obs::tracing()) {
      mot::obs::emit({.type = mot::obs::Ev::kMsgSend,
                      .t = static_cast<double>(i),
                      .object = i,
                      .label = "bench"});
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  mot::obs::install_trace_sink(previous);
  return wall.count() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const mot::bench::CommonFlags common = mot::bench::parse_common(
      argc, argv,
      "observability overhead: unsinked emit guard; traced vs untraced "
      "loopback-cluster throughput (ring and JSONL sinks)");
  const std::size_t side = common.full ? 12 : 8;
  // Long runs: on a busy box the scheduler noise on a short cluster run
  // dwarfs the ~1-2% ring overhead; ~0.1s+ per run converges it.
  const int steps =
      common.moves != 0 ? static_cast<int>(common.moves)
                        : (common.full ? 2000 : 1000);
  const int reps = common.seeds != 0 ? static_cast<int>(common.seeds)
                                     : (common.full ? 15 : 9);
  constexpr std::uint32_t kShards = 2;
  const World world(side, common.base_seed + 7);

  const std::uint64_t guard_iters =
      common.full ? 400'000'000ULL : 100'000'000ULL;
  const double guard_ns = unsinked_emit_ns(guard_iters);
  mot::obs::RingBufferSink probe_ring(1 << 10);
  const double ring_event_ns = sinked_emit_ns(&probe_ring, 2'000'000);

  const std::string jsonl_path = "micro_obs_scratch.jsonl";
  mot::obs::RingBufferSink ring(1 << 18);
  auto jsonl = std::make_unique<mot::obs::JsonlFileSink>(jsonl_path);
  // Variant 0 is the untraced baseline; the harness interleaves and
  // rotates the order so drift lands on every sink equally.
  const std::vector<mot::obs::TraceSink*> sinks{nullptr, &ring,
                                                jsonl.get()};
  const std::vector<mot::bench::VariantStats> stats =
      mot::bench::measure_interleaved(
          sinks.size(), reps, [&](std::size_t v, int r) {
            mot::obs::TraceSink* previous =
                mot::obs::install_trace_sink(sinks[v]);
            const double wall = run_cluster(
                world, kShards, steps,
                common.base_seed + static_cast<std::uint64_t>(r));
            mot::obs::install_trace_sink(previous);
            return wall;
          });
  jsonl->flush();
  const std::uint64_t events_written = jsonl->events_written();
  jsonl.reset();
  std::remove(jsonl_path.c_str());

  const double ops = 2.0 * steps + 1.0;  // moves + queries + the publish
  const char* names[] = {"disabled", "ring", "jsonl"};
  mot::Table table({"variant", "shards", "steps", "trimmed s", "ops/s",
                    "overhead %"});
  for (std::size_t v = 0; v < stats.size(); ++v) {
    table.begin_row()
        .cell(std::string(names[v]))
        .cell(static_cast<std::uint64_t>(kShards))
        .cell(static_cast<std::uint64_t>(steps))
        .cell(stats[v].seconds, 4)
        .cell(ops / stats[v].seconds, 1)
        .cell(stats[v].overhead, 2);
  }
  mot::bench::emit("cluster throughput, traced vs untraced", table, common);

  mot::Table guard({"guard ns/op", "ring event ns", "jsonl events/run",
                    "ring claim"});
  guard.begin_row()
      .cell(guard_ns, 3)
      .cell(ring_event_ns, 1)
      .cell(events_written / static_cast<std::uint64_t>(reps))
      .cell(std::string(stats[1].overhead < 5.0 ? "<5% ok" : "OVER 5%"));
  mot::bench::emit("emission cost", guard, common);
  return 0;
}
